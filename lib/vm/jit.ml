open Tml_core

(* Closure-compiling execution tier.

   [compile_unit] translates a compiled unit's bytecode into a tree of
   native OCaml closures — "template compilation": every [Instr.code]
   node becomes one closure, operands become pre-resolved accessors, and
   the interpretive dispatch of {!Machine.exec} disappears.  No code is
   generated on disk; the compiled form lives only in this process and
   is rebuilt on demand, which is exactly the right trade for persistent
   intermediate code (the store keeps TML/bytecode, the tier is a cache).

   Correctness is by construction: compiled code manipulates the same
   [Value.t] representation as the machine (closures are ordinary
   [Mclosure]s over the same physical [unit_code], continuation blocks
   are ordinary [Mblock]s), so any value may flow freely between tiers,
   and any case the compiler does not handle escapes to the machine via
   {!escape_apply}.  The tier also charges {e exactly} the same abstract
   instruction costs at the same points as the machine — step counts and
   fuel behaviour are observably identical, which the differential
   oracle battery ({!Tml_check.Oracle}) and the cram tests rely on.
   Where two consecutive charges have no possible fault or observation
   point between them (a primitive whose continuations are statically
   well-formed inline blocks), they are folded into one charge of the
   summed cost: the step total at every observable point, including the
   fuel-exhaustion boundary, is unchanged.

   Primitive fast paths (integer arithmetic/comparison, array access,
   [==] dispatch, …) inline the standard implementations without
   consing argument lists.  Each fast path is gated at compile time on
   {!Runtime.is_standard_impl}: if the registered implementation is not
   the exact closure [Runtime.install] registered, the generic dispatch
   (which consults the registry like the machine does) is used instead.
   An override registered {e after} a unit was compiled is not seen by
   already-compiled fast paths — documented in docs/TIERS.md.

   Call sites and array primitives carry {e per-site monomorphic inline
   caches}: the last continuation block's compiled code, the last
   [Oidv] callee's compiled entry, the last dereferenced array's slots.
   Caches are validated by physical equality plus two generation
   counters — {!Value.Heap.generation} (bumped on any slot replacement,
   eviction or hook change) and {!site_gen} (bumped by {!Tierup} on any
   promotion, deoptimization or invalidation) — and are never filled
   while a heap access hook is installed, so a store's recency/dirty
   tracking observes every dereference. *)

type ccode = Runtime.ctx -> Value.t array -> Value.t array -> Eval.outcome

type centry = {
  c_name : string;
  c_arity : int;
  c_nregs : int;  (** >= 1, frame size *)
  mutable c_body : ccode;
}

type cunit = {
  src : Instr.unit_code;
  mutable funcs : centry array;
  mutable blocks : (Instr.code * ccode) list;
      (** compiled continuation blocks, keyed by physical [Cblock] body *)
}

(* a compiled continuation slot of a [Primop] *)
type csink =
  | Sblock of int array * Instr.code * ccode
  | Sval of (Value.t array -> Value.t array -> Value.t)

(* Installed by {!Machine} at load time: full applicator for values the
   compiled tier hands back to the interpreter. *)
let escape_apply : (Runtime.ctx -> Value.t -> Value.t list -> Eval.outcome) ref =
  ref (fun _ _ _ -> Runtime.fault "jit: no machine escape installed")

(* Installed by {!Tierup}: consulted on [Oidv] application so calls into
   promoted functions stay on the compiled tier. *)
let oid_entry :
    (Runtime.ctx ->
    Oid.t ->
    Value.func_obj ->
    (Runtime.ctx -> Value.t list -> Eval.outcome) option)
    ref =
  ref (fun _ _ _ -> None)

(* Bumped whenever the meaning of a stored function may have changed
   (promotion, deoptimization, speccache invalidation, registry clear):
   every per-site [Oidv] inline cache keys on it. *)
let site_gen = ref 0
let invalidate_sites () = incr site_gen

let compiled_units_ = ref 0
let compiled_units () = !compiled_units_

(* shared boxes for the hottest results; [Value.identical] is structural
   on immediates, so sharing is unobservable *)
let int_cache = Array.init 1281 (fun i -> Value.Int (i - 128))

let mk_int i =
  if i >= -128 && i <= 1152 then Array.unsafe_get int_cache (i + 128) else Value.Int i

let v_true = Value.Bool true
let v_false = Value.Bool false
let mk_bool b = if b then v_true else v_false

(* a frame is allocated on every call and frames are small: literal
   allocations (inline) beat [Array.make]'s C call for common sizes *)
let u = Value.Unit

let alloc_frame = function
  | 1 -> [| u |]
  | 2 -> [| u; u |]
  | 3 -> [| u; u; u |]
  | 4 -> [| u; u; u; u |]
  | 5 -> [| u; u; u; u; u |]
  | 6 -> [| u; u; u; u; u; u |]
  | 7 -> [| u; u; u; u; u; u; u |]
  | 8 -> [| u; u; u; u; u; u; u; u |]
  | 9 -> [| u; u; u; u; u; u; u; u; u |]
  | 10 -> [| u; u; u; u; u; u; u; u; u; u |]
  | n -> Array.make n u

(* never-matching sentinels for empty inline caches *)
let dummy_code = Instr.Tailcall (Instr.Reg 0, [])
let dummy_ccode : ccode = fun _ _ _ -> assert false
let dummy_heap = Value.Heap.create ()
let dummy_unit : Instr.unit_code = { Instr.funcs = [||]; entry = 0 }

let dummy_centry : centry =
  { c_name = ""; c_arity = -1; c_nregs = 1; c_body = dummy_ccode }

(* ------------------------------------------------------------------ *)
(* Unit registry                                                       *)
(* ------------------------------------------------------------------ *)

(* Compiled units are cached per physical [unit_code] so cross-unit
   calls compile each callee once.  The registry is a bounded assoc
   list: unit counts are small (one per linked function nest), and the
   cap only guards pathological churn (a fuzz campaign allocating
   thousands of programs) — on overflow everything is dropped and
   recompiled on demand. *)
let registry_cap = 512
let registry : cunit list ref = ref []
let last_hit : cunit option ref = ref None

let find_unit u =
  match !last_hit with
  | Some cu when cu.src == u -> Some cu
  | _ ->
    let rec scan = function
      | [] -> None
      | cu :: rest -> if cu.src == u then Some cu else scan rest
    in
    (match scan !registry with
    | Some cu ->
      last_hit := Some cu;
      Some cu
    | None -> None)

let clear () =
  registry := [];
  last_hit := None;
  invalidate_sites ()

let prim_cost name =
  match Prim.find name with
  | Some d -> d.Prim.base_cost
  | None -> 1

let register_block cu code cc =
  if not (List.exists (fun (c, _) -> c == code) cu.blocks) then
    cu.blocks <- (code, cc) :: cu.blocks

let find_block cu code =
  let rec scan = function
    | [] -> None
    | (c, cc) :: rest -> if c == code then Some cc else scan rest
  in
  scan cu.blocks

(* operands are pure; accessors may be pre-resolved and constants shared *)
let comp_operand : Instr.operand -> Value.t array -> Value.t array -> Value.t = function
  | Instr.Reg r -> fun _env frame -> frame.(r)
  | Instr.Env e -> fun env _frame -> env.(e)
  | Instr.Const l ->
    let v = Value.of_literal l in
    fun _env _frame -> v
  | Instr.Primconst name ->
    let v = Value.Primv name in
    fun _env _frame -> v

(* Compact capture descriptors: closure creation is a hot allocation
   site, so environments are filled by tag dispatch rather than through
   per-capture accessor closures. *)
type cap = Cfrm of int | Cenv of int | Cconst of Value.t

let comp_cap : Instr.operand -> cap = function
  | Instr.Reg r -> Cfrm r
  | Instr.Env e -> Cenv e
  | Instr.Const l -> Cconst (Value.of_literal l)
  | Instr.Primconst name -> Cconst (Value.Primv name)

let cap_get env frame = function
  | Cfrm r -> frame.(r)
  | Cenv e -> env.(e)
  | Cconst v -> v

let cap_env caps env frame =
  let n = Array.length caps in
  if n = 0 then [||]
  else begin
    let e = Array.make n Value.Unit in
    for i = 0 to n - 1 do
      Array.unsafe_set e i (cap_get env frame (Array.unsafe_get caps i))
    done;
    e
  end

(* [caps] is [Cenv 0; Cenv 1; …; Cenv (n-1)]: the new environment is a
   prefix copy of the enclosing one *)
let identity_prefix caps =
  let n = Array.length caps in
  let rec go i =
    i = n
    ||
    match Array.unsafe_get caps i with
    | Cenv e when e = i -> go (i + 1)
    | _ -> false
  in
  n > 0 && go 0

(* compile-time specialized builders for the common small environments:
   the array is allocated initialized, with no per-capture dispatch.
   An identity-prefix capture set shares the enclosing environment array
   outright: environments are immutable once any code in their nest
   runs, compiled code reads only capture indices below its own count,
   and nothing compares environment arrays by identity — so sharing is
   unobservable and saves the copy (the machine's per-capture charge is
   still paid by the caller). *)
let comp_env (caps : cap array) : Value.t array -> Value.t array -> Value.t array =
  if identity_prefix caps then fun env _ -> env
  else
  match caps with
  | [||] -> fun _ _ -> [||]
  | [| Cfrm r |] -> fun _ frame -> [| frame.(r) |]
  | [| Cenv e |] -> fun env _ -> [| env.(e) |]
  | [| Cconst v |] -> fun _ _ -> [| v |]
  | [| c0; c1 |] -> fun env frame -> [| cap_get env frame c0; cap_get env frame c1 |]
  | [| c0; c1; c2 |] ->
    fun env frame ->
      [| cap_get env frame c0; cap_get env frame c1; cap_get env frame c2 |]
  | [| c0; c1; c2; c3 |] ->
    fun env frame ->
      [|
        cap_get env frame c0; cap_get env frame c1; cap_get env frame c2;
        cap_get env frame c3;
      |]
  | caps -> fun env frame -> cap_env caps env frame

(* statically well-formed inline-block continuations: entering one
   cannot fault, so the machine's charge-1-on-entry may be folded into
   the preceding primop's charge *)
let good_block0 = function
  | Sblock (regs, _, cc) when Array.length regs = 0 -> Some cc
  | _ -> None

let good_block1 = function
  | Sblock (regs, _, cc) when Array.length regs = 1 -> Some (regs.(0), cc)
  | _ -> None

let rec all_good0 = function
  | [] -> Some []
  | s :: rest -> (
    match good_block0 s, all_good0 rest with
    | Some cc, Some ccs -> Some (cc :: ccs)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Compiler                                                            *)
(* ------------------------------------------------------------------ *)

let rec compile_unit (u : Instr.unit_code) : cunit =
  match find_unit u with
  | Some cu -> cu
  | None ->
    if List.length !registry >= registry_cap then clear ();
    let cu = { src = u; funcs = [||]; blocks = [] } in
    registry := cu :: !registry;
    last_hit := Some cu;
    cu.funcs <-
      Array.map
        (fun (f : Instr.func) ->
          {
            c_name = f.Instr.fn_name;
            c_arity = f.Instr.arity;
            c_nregs = max f.Instr.nregs 1;
            c_body = comp_code cu f.Instr.body;
          })
        u.Instr.funcs;
    incr compiled_units_;
    cu

and comp_code cu (code : Instr.code) : ccode =
  match code with
  | Instr.Tailcall (f, args) -> comp_tailcall cu f args
  | Instr.Primop (name, vals, conts) -> comp_primop cu name vals conts
  | Instr.Close (defs, rest) ->
    let src = cu.src in
    let cdefs =
      Array.of_list
        (List.map
           (fun { Instr.dst; fn; captures } ->
             let caps = Array.map comp_cap captures in
             dst, fn, comp_env caps, 1 + Array.length caps)
           defs)
    in
    let crest = comp_code cu rest in
    if Array.length cdefs = 1 then begin
      let dst, fn, mk_env, cost = cdefs.(0) in
      fun ctx env frame ->
        Runtime.charge ctx cost;
        frame.(dst) <-
          Value.Mclosure { Value.m_unit = src; m_fn = fn; m_env = mk_env env frame };
        crest ctx env frame
    end
    else
      fun ctx env frame ->
        for i = 0 to Array.length cdefs - 1 do
          let dst, fn, mk_env, cost = cdefs.(i) in
          Runtime.charge ctx cost;
          frame.(dst) <-
            Value.Mclosure { Value.m_unit = src; m_fn = fn; m_env = mk_env env frame }
        done;
        crest ctx env frame
  | Instr.Fix (defs, rest) ->
    let src = cu.src in
    let cdefs =
      Array.of_list
        (List.map (fun { Instr.dst; fn; captures } -> dst, fn, Array.map comp_cap captures) defs)
    in
    let crest = comp_code cu rest in
    let nd = Array.length cdefs in
    fun ctx env frame ->
      (* two phases, exactly like the machine: allocate the nest with
         empty environments, then fill captures (which may refer back) *)
      let envs = Array.make nd [||] in
      for i = 0 to nd - 1 do
        let dst, fn, caps = cdefs.(i) in
        Runtime.charge ctx (1 + Array.length caps);
        let e = Array.make (Array.length caps) Value.Unit in
        frame.(dst) <- Value.Mclosure { Value.m_unit = src; m_fn = fn; m_env = e };
        envs.(i) <- e
      done;
      for i = 0 to nd - 1 do
        let _, _, caps = cdefs.(i) in
        let e = envs.(i) in
        for j = 0 to Array.length caps - 1 do
          e.(j) <- cap_get env frame (Array.unsafe_get caps j)
        done
      done;
      crest ctx env frame

(* Every transfer of control is a tail call.  The three hot shapes each
   get a direct, allocation-light path with a per-site inline cache:

   - [Mclosure]: resolve the callee's compiled entry and evaluate the
     arguments straight into its fresh frame — no argument list;
   - [Oidv]: cache the resolved compiled entry of the stored function
     (validated by the heap and site generations, mirroring deopt);
   - [Mblock]: cache the block's compiled code, bypassing the per-unit
     block list (every call/return round trip in CPS applies a block).

   Anything else builds the argument list and goes through the full
   applicator, exactly like the machine. *)
and comp_tailcall cu f args =
  let cargs = Array.of_list (List.map comp_operand args) in
  match f with
  | Instr.Primconst name -> (
    (* statically known primitive callee: fully compiled call *)
    match prim_call_site cu name cargs with
    | Some call -> call
    | None -> comp_tailcall_dyn cu f cargs)
  | _ -> comp_tailcall_dyn cu f cargs

and comp_tailcall_dyn cu f cargs =
  let cf = comp_operand f in
  let nargs = Array.length cargs in
  let src = cu.src in
  (* [Oidv] callee cache: [oc_call] is a prebuilt direct call for the
     resolved target — compiled entry or η-reduced primitive *)
  let oc_fv = ref Value.Unit
  and oc_heap = ref dummy_heap
  and oc_hgen = ref (-1)
  and oc_tgen = ref (-1)
  and oc_call = ref dummy_ccode in
  (* [Mblock] continuation cache *)
  let bc_code = ref dummy_code and bc_cc = ref dummy_ccode in
  let build env frame =
    let rec go i =
      if i = nargs then [] else (Array.unsafe_get cargs i) env frame :: go (i + 1)
    in
    go 0
  in
  let call_direct ctx env frame (ce : centry) cenv =
    Runtime.charge ctx (1 + nargs);
    if nargs <> ce.c_arity then
      Runtime.fault "machine function %s/%d applied to %d arguments" ce.c_name ce.c_arity
        nargs;
    let nf = alloc_frame ce.c_nregs in
    for i = 0 to nargs - 1 do
      nf.(i) <- (Array.unsafe_get cargs i) env frame
    done;
    ce.c_body ctx cenv nf
  in
  fun ctx env frame ->
    match cf env frame with
    | Value.Mclosure c ->
      let cu' = if c.Value.m_unit == src then cu else compile_unit c.Value.m_unit in
      call_direct ctx env frame cu'.funcs.(c.Value.m_fn) c.Value.m_env
    | Value.Oidv oid as fv ->
      let h = ctx.Runtime.heap in
      if
        fv == !oc_fv
        && h == !oc_heap
        && Value.Heap.generation h = !oc_hgen
        && !site_gen = !oc_tgen
      then !oc_call ctx env frame
      else begin
        (* fill only when no access hook wants to observe dereferences;
           installing one bumps the heap generation, killing stale fills *)
        let fill call =
          match Value.Heap.access_hook h with
          | None ->
            oc_fv := fv;
            oc_heap := h;
            oc_hgen := Value.Heap.generation h;
            oc_tgen := !site_gen;
            oc_call := call
          | Some _ -> ()
        in
        match Value.Heap.get_opt h oid with
        | Some (Value.Func fo) -> (
          match Compile.compile_func ctx fo with
          | Value.Mclosure c ->
            let cu' = if c.Value.m_unit == src then cu else compile_unit c.Value.m_unit in
            let ce = cu'.funcs.(c.Value.m_fn) in
            if ce.c_arity = nargs then begin
              let cenv = c.Value.m_env in
              let call ctx env frame =
                (* arity was checked at fill time *)
                Runtime.charge ctx (1 + nargs);
                let nf = alloc_frame ce.c_nregs in
                for i = 0 to nargs - 1 do
                  nf.(i) <- (Array.unsafe_get cargs i) env frame
                done;
                ce.c_body ctx cenv nf
              in
              fill call;
              call ctx env frame
            end
            else call_direct ctx env frame ce c.Value.m_env
          | Value.Primv pname as pv -> (
            (* the stored function η-reduced to a primitive: compile a
               direct invoke for this site *)
            match prim_call_site cu pname cargs with
            | Some call ->
              fill call;
              call ctx env frame
            | None -> call_value cu ctx pv (build env frame))
          | other -> call_value cu ctx other (build env frame))
        | Some _ -> Runtime.fault "%s is not applicable" (Oid.to_string oid)
        | None -> Runtime.fault "dangling function reference %s" (Oid.to_string oid)
      end
    | Value.Mblock b when b.Value.b_code == !bc_code ->
      Runtime.charge ctx 1;
      let regs = b.Value.b_regs in
      if nargs <> Array.length regs then
        Runtime.fault "continuation block expected %d values, got %d" (Array.length regs)
          nargs;
      let bf = b.Value.b_frame in
      if bf == frame then begin
        (* the block lives in this very frame: evaluate every argument
           before writing any destination register (they may overlap) *)
        let tmp = Array.make (max nargs 1) Value.Unit in
        for i = 0 to nargs - 1 do
          tmp.(i) <- (Array.unsafe_get cargs i) env frame
        done;
        for i = 0 to nargs - 1 do
          bf.(regs.(i)) <- tmp.(i)
        done
      end
      else
        for i = 0 to nargs - 1 do
          bf.(regs.(i)) <- (Array.unsafe_get cargs i) env frame
        done;
      !bc_cc ctx b.Value.b_env bf
    | Value.Mblock b -> apply_block_miss cu bc_code bc_cc ctx b (build env frame)
    | fv -> call_value cu ctx fv (build env frame)

(* resolve the compiled code of block [b], fill the site cache, apply *)
and apply_block_miss cu bc_code bc_cc ctx (b : Value.mblock) args =
  let cu' = if b.Value.b_unit == cu.src then cu else compile_unit b.Value.b_unit in
  match find_block cu' b.Value.b_code with
  | Some cc ->
    bc_code := b.Value.b_code;
    bc_cc := cc;
    Runtime.charge ctx 1;
    let n = Array.length b.Value.b_regs in
    if List.length args <> n then
      Runtime.fault "continuation block expected %d values, got %d" n (List.length args);
    List.iteri (fun i v -> b.Value.b_frame.(b.Value.b_regs.(i)) <- v) args;
    cc ctx b.Value.b_env b.Value.b_frame
  | None -> !escape_apply ctx (Value.Mblock b) args

and comp_primop cu name vals conts =
  let cost = prim_cost name in
  let cvals = List.map comp_operand vals in
  let sinks =
    List.map
      (function
        | Instr.Cval op -> Sval (comp_operand op)
        | Instr.Cblock (regs, code) ->
          let cc = comp_code cu code in
          register_block cu code cc;
          Sblock (regs, code, cc))
      conts
  in
  let generic = comp_generic cu name cost cvals sinks in
  if Runtime.is_standard_impl name then fast_path cu name cost cvals sinks generic
  else generic

(* The generic primop mirrors {!Machine.exec}'s [Primop] case: charge,
   evaluate operands, materialize continuation blocks as [Mblock]s, look
   up the registered implementation and invoke the continuation it
   picks.  Block continuations the implementation returns are matched
   positionally (physical equality against the values just built) and
   continue on compiled code. *)
and comp_generic cu name cost cvals sinks =
  let impl_ref = ref None in
  let src = cu.src in
  fun ctx env frame ->
    Runtime.charge ctx cost;
    let values = List.map (fun g -> g env frame) cvals in
    let contvs =
      List.map
        (function
          | Sval g -> g env frame
          | Sblock (regs, code, _) ->
            Value.Mblock
              { Value.b_frame = frame; b_unit = src; b_env = env; b_regs = regs; b_code = code })
        sinks
    in
    let impl =
      match !impl_ref with
      | Some f -> f
      | None ->
        let f = Runtime.find_impl_exn name in
        impl_ref := Some f;
        f
    in
    let (Runtime.Invoke (k, results)) = impl ctx values contvs in
    dispatch cu ctx env frame sinks contvs k results

and dispatch cu ctx env frame sinks contvs k results =
  match sinks, contvs with
  | Sblock (regs, _, cc) :: _, v :: _ when v == k ->
    Runtime.charge ctx 1;
    let n = Array.length regs in
    if List.length results <> n then
      Runtime.fault "continuation block expected %d values, got %d" n (List.length results);
    List.iteri (fun i r -> frame.(regs.(i)) <- r) results;
    cc ctx env frame
  | _ :: sinks', _ :: contvs' -> dispatch cu ctx env frame sinks' contvs' k results
  | _, _ -> call_value cu ctx k results

(* Pre-compiled continuation senders: deliver zero / one result to a
   continuation slot, mirroring the machine's [Mblock] application
   (charge 1, count check, frame writes).  Value continuations carry a
   per-site cache of the last block they resolved to. *)
and comp_sink0 cu sink =
  match sink with
  | Sblock (regs, _, cc) ->
    let n = Array.length regs in
    if n = 0 then
      fun ctx env frame ->
        Runtime.charge ctx 1;
        cc ctx env frame
    else
      fun ctx _env _frame ->
        Runtime.charge ctx 1;
        Runtime.fault "continuation block expected %d values, got 0" n
  | Sval g ->
    let bc_code = ref dummy_code and bc_cc = ref dummy_ccode in
    let mc_unit = ref dummy_unit and mc_fn = ref (-1) and mc_ce = ref dummy_centry in
    fun ctx env frame -> (
      match g env frame with
      | Value.Mblock b when b.Value.b_code == !bc_code ->
        Runtime.charge ctx 1;
        if Array.length b.Value.b_regs <> 0 then
          Runtime.fault "continuation block expected %d values, got 0"
            (Array.length b.Value.b_regs);
        !bc_cc ctx b.Value.b_env b.Value.b_frame
      | Value.Mblock b -> apply_block_miss cu bc_code bc_cc ctx b []
      | Value.Mclosure c when c.Value.m_unit == !mc_unit && c.Value.m_fn = !mc_fn ->
        let ce = !mc_ce in
        Runtime.charge ctx 1;
        let frame' = alloc_frame ce.c_nregs in
        ce.c_body ctx c.Value.m_env frame'
      | Value.Mclosure c ->
        let cu' = if c.Value.m_unit == cu.src then cu else compile_unit c.Value.m_unit in
        let ce = cu'.funcs.(c.Value.m_fn) in
        if ce.c_arity = 0 then begin
          mc_unit := c.Value.m_unit;
          mc_fn := c.Value.m_fn;
          mc_ce := ce
        end;
        apply_centry ce ctx c.Value.m_env []
      | fv -> call_value cu ctx fv [])

and comp_sink1 cu sink =
  match sink with
  | Sblock (regs, _, cc) ->
    if Array.length regs = 1 then begin
      let r0 = regs.(0) in
      fun ctx env frame v ->
        Runtime.charge ctx 1;
        frame.(r0) <- v;
        cc ctx env frame
    end
    else begin
      let n = Array.length regs in
      fun ctx _env _frame _v ->
        Runtime.charge ctx 1;
        Runtime.fault "continuation block expected %d values, got 1" n
    end
  | Sval g ->
    let bc_code = ref dummy_code and bc_cc = ref dummy_ccode in
    let mc_unit = ref dummy_unit and mc_fn = ref (-1) and mc_ce = ref dummy_centry in
    fun ctx env frame v -> (
      match g env frame with
      | Value.Mblock b when b.Value.b_code == !bc_code ->
        Runtime.charge ctx 1;
        let regs = b.Value.b_regs in
        if Array.length regs <> 1 then
          Runtime.fault "continuation block expected %d values, got 1" (Array.length regs);
        b.Value.b_frame.(regs.(0)) <- v;
        !bc_cc ctx b.Value.b_env b.Value.b_frame
      | Value.Mblock b -> apply_block_miss cu bc_code bc_cc ctx b [ v ]
      | Value.Mclosure c when c.Value.m_unit == !mc_unit && c.Value.m_fn = !mc_fn ->
        (* cached unary closure continuation: charge and arity check as
           [apply_centry] on a one-element list (arity 1 was verified at
           fill time, so only the charge remains observable) *)
        let ce = !mc_ce in
        Runtime.charge ctx 2;
        let frame' = alloc_frame ce.c_nregs in
        frame'.(0) <- v;
        ce.c_body ctx c.Value.m_env frame'
      | Value.Mclosure c ->
        let cu' = if c.Value.m_unit == cu.src then cu else compile_unit c.Value.m_unit in
        let ce = cu'.funcs.(c.Value.m_fn) in
        if ce.c_arity = 1 then begin
          mc_unit := c.Value.m_unit;
          mc_fn := c.Value.m_fn;
          mc_ce := ce
        end;
        apply_centry ce ctx c.Value.m_env [ v ]
      | fv -> call_value cu ctx fv [ v ])

(* Direct call path for a primitive applied as a first-class value — a
   [Primconst] callee, or a stored function the optimizer η-reduced to
   its primitive.  The descriptor, implementation and argument split are
   resolved once per site; the invoke continuation goes through the same
   per-site block caches as [Primop] value continuations.  Integer
   arithmetic and comparison additionally get the inline treatment of
   the [Primop] fast paths, gated on {!Runtime.is_standard_impl} (an
   implementation override registered after the site was compiled is not
   seen — the same caveat as the fast paths, see docs/TIERS.md).
   Returns [None] for shapes that must keep the machine's per-call fault
   behaviour (unknown primitive, missing implementation, too few
   continuation arguments). *)
and prim_call_site cu name cargs =
  let nargs = Array.length cargs in
  match Prim.find name with
  | None -> None
  | Some d -> (
    match d.Prim.cont_arity with
    | None -> None
    | Some nc when nargs < nc -> None
    | Some nc -> (
      match Runtime.find_impl name with
      | None -> None
      | Some impl ->
        let nvals = nargs - nc in
        let base = d.Prim.base_cost in
        (* generic invoke: charge, build value/continuation lists, call
           the implementation, deliver through a cached continuation —
           exactly [call_value]'s [Primv] case with the lookups hoisted *)
        let kc_code = ref dummy_code and kc_cc = ref dummy_ccode in
        let generic ctx env frame =
          Runtime.charge ctx base;
          let rec eval_to stop i =
            if i = stop then []
            else
              let v = (Array.unsafe_get cargs i) env frame in
              v :: eval_to stop (i + 1)
          in
          let values = eval_to nvals 0 in
          let conts = eval_to nargs nvals in
          let (Runtime.Invoke (k, results)) = impl ctx values conts in
          match k with
          | Value.Mblock b when b.Value.b_code == !kc_code ->
            Runtime.charge ctx 1;
            let regs = b.Value.b_regs in
            let n = Array.length regs in
            if List.length results <> n then
              Runtime.fault "continuation block expected %d values, got %d" n
                (List.length results);
            List.iteri (fun i v -> b.Value.b_frame.(regs.(i)) <- v) results;
            !kc_cc ctx b.Value.b_env b.Value.b_frame
          | Value.Mblock b -> apply_block_miss cu kc_code kc_cc ctx b results
          | k -> call_value cu ctx k results
        in
        if not (Runtime.is_standard_impl name) then Some generic
        else (
          match name, nargs with
          | ("+" | "-" | "*" | "/" | "%"), 4 ->
            let ca = cargs.(0) and cb = cargs.(1) in
            let send_e = comp_sink1 cu (Sval cargs.(2))
            and send_c = comp_sink1 cu (Sval cargs.(3)) in
            let ok ctx env frame r = send_c ctx env frame (mk_int r)
            and ovf ctx env frame msg = send_e ctx env frame (Value.Str msg) in
            Some (arith_site name ca cb base ok ovf generic)
          | ("<" | "<=" | ">" | ">="), 4 ->
            let op : int -> int -> bool =
              match name with
              | "<" -> ( < )
              | "<=" -> ( <= )
              | ">" -> ( > )
              | _ -> ( >= )
            in
            let ca = cargs.(0) and cb = cargs.(1) in
            let send_t = comp_sink0 cu (Sval cargs.(2))
            and send_f = comp_sink0 cu (Sval cargs.(3)) in
            Some
              (fun ctx env frame ->
                match ca env frame, cb env frame with
                | Value.Int a, Value.Int b ->
                  Runtime.charge ctx base;
                  if op a b then send_t ctx env frame else send_f ctx env frame
                | _ -> generic ctx env frame)
          | _ -> Some generic)))

(* resolve the slots of an indexable store object exactly as the
   machine's implementation would (including hooks and faults), and
   cache them only when safe: in-place-mutable or immutable slot arrays
   (a relation materializes a row snapshot that is memoized on its
   header and invalidated by insert, so no per-site cache is needed),
   and never while an access hook wants to observe reads *)
and indexable_slots ~what ctx h oid a fill =
  let slots = Runtime.as_indexable ctx ~what a in
  (match Value.Heap.access_hook h with
  | None -> (
    match Value.Heap.peek h oid with
    | Some (Value.Array s | Value.Vector s | Value.Tuple s) -> fill s
    | _ -> ())
  | Some _ -> ());
  slots

and array_slots ~what ctx h oid a fill =
  let slots = Runtime.as_array ctx ~what a in
  (match Value.Heap.access_hook h with
  | None -> (
    match Value.Heap.peek h oid with
    | Some (Value.Array s) -> fill s
    | _ -> ())
  | Some _ -> ());
  slots

(* Checked integer arithmetic, inlined per operator so the hot path
   allocates nothing: branch decisions are exactly those of
   [Primitives.add_checked] and friends ([ok] on success, [ovf] with the
   machine's message on overflow / division by zero), without the option
   box or the indirect call through a [checked] function value. *)
and arith_site name ca cb cost ok ovf generic =
  match name with
  | "+" ->
    fun ctx env frame -> (
      match ca env frame, cb env frame with
      | Value.Int a, Value.Int b ->
        Runtime.charge ctx cost;
        let r = a + b in
        if a >= 0 = (b >= 0) && r >= 0 <> (a >= 0) then
          ovf ctx env frame Primitives.overflow_message
        else ok ctx env frame r
      | _ -> generic ctx env frame)
  | "-" ->
    fun ctx env frame -> (
      match ca env frame, cb env frame with
      | Value.Int a, Value.Int b ->
        Runtime.charge ctx cost;
        let r = a - b in
        if a >= 0 <> (b >= 0) && r >= 0 <> (a >= 0) then
          ovf ctx env frame Primitives.overflow_message
        else ok ctx env frame r
      | _ -> generic ctx env frame)
  | "*" ->
    fun ctx env frame -> (
      match ca env frame, cb env frame with
      | Value.Int a, Value.Int b ->
        Runtime.charge ctx cost;
        if a = 0 || b = 0 then ok ctx env frame 0
        else if a = -1 then
          if b = min_int then ovf ctx env frame Primitives.overflow_message
          else ok ctx env frame (-b)
        else if b = -1 then
          if a = min_int then ovf ctx env frame Primitives.overflow_message
          else ok ctx env frame (-a)
        else
          let r = a * b in
          if r / a = b then ok ctx env frame r
          else ovf ctx env frame Primitives.overflow_message
      | _ -> generic ctx env frame)
  | "/" ->
    fun ctx env frame -> (
      match ca env frame, cb env frame with
      | Value.Int a, Value.Int b ->
        Runtime.charge ctx cost;
        if b = 0 then ovf ctx env frame Primitives.div_zero_message
        else if a = min_int && b = -1 then ovf ctx env frame Primitives.overflow_message
        else ok ctx env frame (a / b)
      | _ -> generic ctx env frame)
  | _ ->
    fun ctx env frame -> (
      match ca env frame, cb env frame with
      | Value.Int a, Value.Int b ->
        Runtime.charge ctx cost;
        if b = 0 then ovf ctx env frame Primitives.div_zero_message
        else if a = min_int && b = -1 then ok ctx env frame 0
        else ok ctx env frame (Int.rem a b)
      | _ -> generic ctx env frame)

(* Inline fast paths for the standard implementations of the hottest
   primitives.  Operands are pure, so each fast path may evaluate them
   {e before} charging; on a representation mismatch it falls back to
   the generic dispatch, which re-evaluates the operands and reproduces
   the machine's exact charge-then-fault order.  When the continuations
   are statically well-formed blocks, the block-entry charge is folded
   into the primop charge (see the header comment). *)
and fast_path cu name cost cvals sinks generic =
  match name, cvals, sinks with
  | ("+" | "-" | "*" | "/" | "%"), [ ca; cb ], [ se; sc ] -> (
    match good_block1 se, good_block1 sc with
    | Some (re, ce), Some (rc, cc) ->
      let ok ctx env frame r =
        frame.(rc) <- mk_int r;
        cc ctx env frame
      and ovf ctx env frame msg =
        frame.(re) <- Value.Str msg;
        ce ctx env frame
      in
      arith_site name ca cb (cost + 1) ok ovf generic
    | _ ->
      let send_e = comp_sink1 cu se and send_c = comp_sink1 cu sc in
      let ok ctx env frame r = send_c ctx env frame (mk_int r)
      and ovf ctx env frame msg = send_e ctx env frame (Value.Str msg) in
      arith_site name ca cb cost ok ovf generic)
  | ("<" | "<=" | ">" | ">="), [ ca; cb ], [ st; sf ] -> (
    let op : int -> int -> bool =
      match name with
      | "<" -> ( < )
      | "<=" -> ( <= )
      | ">" -> ( > )
      | _ -> ( >= )
    in
    match good_block0 st, good_block0 sf with
    | Some jt, Some jf ->
      let cost1 = cost + 1 in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Int a, Value.Int b ->
          Runtime.charge ctx cost1;
          if op a b then jt ctx env frame else jf ctx env frame
        | _ -> generic ctx env frame)
    | _ ->
      let send_t = comp_sink0 cu st and send_f = comp_sink0 cu sf in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Int a, Value.Int b ->
          Runtime.charge ctx cost;
          if op a b then send_t ctx env frame else send_f ctx env frame
        | _ -> generic ctx env frame))
  | ("f+" | "f-" | "f*" | "f/"), [ ca; cb ], [ k ] -> (
    let op : float -> float -> float =
      match name with
      | "f+" -> ( +. )
      | "f-" -> ( -. )
      | "f*" -> ( *. )
      | _ -> ( /. )
    in
    match good_block1 k with
    | Some (r0, cc) ->
      let cost1 = cost + 1 in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Real a, Value.Real b ->
          Runtime.charge ctx cost1;
          frame.(r0) <- Value.Real (op a b);
          cc ctx env frame
        | _ -> generic ctx env frame)
    | None ->
      let send = comp_sink1 cu k in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Real a, Value.Real b ->
          Runtime.charge ctx cost;
          send ctx env frame (Value.Real (op a b))
        | _ -> generic ctx env frame))
  | ("f<" | "f<=" | "f>" | "f>="), [ ca; cb ], [ st; sf ] -> (
    let op : float -> float -> bool =
      match name with
      | "f<" -> ( < )
      | "f<=" -> ( <= )
      | "f>" -> ( > )
      | _ -> ( >= )
    in
    match good_block0 st, good_block0 sf with
    | Some jt, Some jf ->
      let cost1 = cost + 1 in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Real a, Value.Real b ->
          Runtime.charge ctx cost1;
          if op a b then jt ctx env frame else jf ctx env frame
        | _ -> generic ctx env frame)
    | _ ->
      let send_t = comp_sink0 cu st and send_f = comp_sink0 cu sf in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Real a, Value.Real b ->
          Runtime.charge ctx cost;
          if op a b then send_t ctx env frame else send_f ctx env frame
        | _ -> generic ctx env frame))
  | ("band" | "bor" | "bxor"), [ ca; cb ], [ k ] -> (
    let op : int -> int -> int =
      match name with
      | "band" -> ( land )
      | "bor" -> ( lor )
      | _ -> ( lxor )
    in
    match good_block1 k with
    | Some (r0, cc) ->
      let cost1 = cost + 1 in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Int a, Value.Int b ->
          Runtime.charge ctx cost1;
          frame.(r0) <- mk_int (op a b);
          cc ctx env frame
        | _ -> generic ctx env frame)
    | None ->
      let send = comp_sink1 cu k in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Int a, Value.Int b ->
          Runtime.charge ctx cost;
          send ctx env frame (mk_int (op a b))
        | _ -> generic ctx env frame))
  | ("and" | "or"), [ ca; cb ], [ k ] -> (
    let op : bool -> bool -> bool = if name = "and" then ( && ) else ( || ) in
    match good_block1 k with
    | Some (r0, cc) ->
      let cost1 = cost + 1 in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Bool a, Value.Bool b ->
          Runtime.charge ctx cost1;
          frame.(r0) <- mk_bool (op a b);
          cc ctx env frame
        | _ -> generic ctx env frame)
    | None ->
      let send = comp_sink1 cu k in
      fun ctx env frame -> (
        match ca env frame, cb env frame with
        | Value.Bool a, Value.Bool b ->
          Runtime.charge ctx cost;
          send ctx env frame (mk_bool (op a b))
        | _ -> generic ctx env frame))
  | "[]", [ ca; ci ], [ k ] ->
    let send = comp_sink1 cu k in
    let c_a = ref Value.Unit
    and c_heap = ref dummy_heap
    and c_hgen = ref (-1)
    and c_slots = ref [||] in
    fun ctx env frame -> (
      match ca env frame, ci env frame with
      | (Value.Oidv oid as a), Value.Int i ->
        Runtime.charge ctx cost;
        let h = ctx.Runtime.heap in
        let slots =
          if a == !c_a && h == !c_heap && Value.Heap.generation h = !c_hgen then !c_slots
          else
            indexable_slots ~what:"[]" ctx h oid a (fun s ->
                c_a := a;
                c_heap := h;
                c_hgen := Value.Heap.generation h;
                c_slots := s)
        in
        if i < 0 || i >= Array.length slots then
          Runtime.fault "[]: index %d out of bounds (size %d)" i (Array.length slots);
        send ctx env frame (Array.unsafe_get slots i)
      | _ -> generic ctx env frame)
  | "[:=]", [ ca; ci; cv ], [ k ] ->
    let send = comp_sink1 cu k in
    let c_a = ref Value.Unit
    and c_heap = ref dummy_heap
    and c_hgen = ref (-1)
    and c_slots = ref [||] in
    fun ctx env frame -> (
      match ca env frame, ci env frame with
      | (Value.Oidv oid as a), Value.Int i ->
        Runtime.charge ctx cost;
        let h = ctx.Runtime.heap in
        let slots =
          if a == !c_a && h == !c_heap && Value.Heap.generation h = !c_hgen then !c_slots
          else
            array_slots ~what:"[:=]" ctx h oid a (fun s ->
                c_a := a;
                c_heap := h;
                c_hgen := Value.Heap.generation h;
                c_slots := s)
        in
        if i < 0 || i >= Array.length slots then
          Runtime.fault "[:=]: index %d out of bounds (size %d)" i (Array.length slots);
        Array.unsafe_set slots i (cv env frame);
        send ctx env frame Value.Unit
      | _ -> generic ctx env frame)
  | "size", [ ca ], [ k ] ->
    let send = comp_sink1 cu k in
    let c_a = ref Value.Unit
    and c_heap = ref dummy_heap
    and c_hgen = ref (-1)
    and c_slots = ref [||] in
    fun ctx env frame -> (
      match ca env frame with
      | Value.Oidv oid as a ->
        Runtime.charge ctx cost;
        let h = ctx.Runtime.heap in
        let slots =
          if a == !c_a && h == !c_heap && Value.Heap.generation h = !c_hgen then !c_slots
          else
            indexable_slots ~what:"size" ctx h oid a (fun s ->
                c_a := a;
                c_heap := h;
                c_hgen := Value.Heap.generation h;
                c_slots := s)
        in
        send ctx env frame (mk_int (Array.length slots))
      | _ -> generic ctx env frame)
  | "==", cscrut :: ctags, _
    when (let nt = List.length ctags and nc = List.length sinks in
          nc = nt || nc = nt + 1) -> (
    let n_tags = List.length ctags in
    let has_default = List.length sinks = n_tags + 1 in
    match all_good0 sinks with
    | Some jumps when has_default -> (
      (* all branches are well-formed blocks and a default exists: no
         fault is reachable between the two charges — fold them *)
      let cost1 = cost + 1 in
      match ctags, jumps with
      | [ tg0 ], [ j0; dflt ] ->
        (* two-way branch, the dominant shape (if/else) *)
        fun ctx env frame ->
          Runtime.charge ctx cost1;
          if Value.identical (cscrut env frame) (tg0 env frame) then j0 ctx env frame
          else dflt ctx env frame
      | [ tg0; tg1 ], [ j0; j1; dflt ] ->
        fun ctx env frame ->
          Runtime.charge ctx cost1;
          let s = cscrut env frame in
          if Value.identical s (tg0 env frame) then j0 ctx env frame
          else if Value.identical s (tg1 env frame) then j1 ctx env frame
          else dflt ctx env frame
      | _ ->
        fun ctx env frame ->
          Runtime.charge ctx cost1;
          let s = cscrut env frame in
          let rec scan tags js =
            match tags, js with
            | tg :: tags', j :: js' ->
              if Value.identical s (tg env frame) then j ctx env frame else scan tags' js'
            | [], [ dflt ] -> dflt ctx env frame
            | _, _ -> assert false
          in
          scan ctags jumps)
    | _ ->
      let senders = List.map (comp_sink0 cu) sinks in
      fun ctx env frame ->
        Runtime.charge ctx cost;
        let s = cscrut env frame in
        let rec scan tags ss =
          match tags, ss with
          | tg :: tags', sk :: ss' ->
            if Value.identical s (tg env frame) then sk ctx env frame else scan tags' ss'
          | [], [ dflt ] -> dflt ctx env frame
          | [], [] -> Runtime.fault "==: no branch matches %s" (Value.to_string s)
          | _, _ -> assert false
        in
        scan ctags senders)
  | _ -> generic

(* list-argument application of a compiled function, mirroring the
   machine's [Mclosure] case (charge, arity check, frame fill) *)
and apply_centry (ce : centry) ctx env args =
  let n = List.length args in
  Runtime.charge ctx (1 + n);
  if n <> ce.c_arity then
    Runtime.fault "machine function %s/%d applied to %d arguments" ce.c_name ce.c_arity n;
  let frame = alloc_frame ce.c_nregs in
  List.iteri (fun i v -> frame.(i) <- v) args;
  ce.c_body ctx env frame

(* The full applicator, mirroring {!Machine.apply} case by case.  Every
   value the compiled tier can be asked to apply is an ordinary machine
   value, so anything unhandled escapes to the interpreter — escape is
   always semantically sound, it merely leaves the tier. *)
and call_value cu ctx (fv : Value.t) (args : Value.t list) : Eval.outcome =
  match fv with
  | Value.Mclosure c ->
    let cu' = if c.Value.m_unit == cu.src then cu else compile_unit c.Value.m_unit in
    apply_centry cu'.funcs.(c.Value.m_fn) ctx c.Value.m_env args
  | Value.Mblock b -> (
    let cu' = if b.Value.b_unit == cu.src then cu else compile_unit b.Value.b_unit in
    match find_block cu' b.Value.b_code with
    | Some cc ->
      Runtime.charge ctx 1;
      let n = Array.length b.Value.b_regs in
      if List.length args <> n then
        Runtime.fault "continuation block expected %d values, got %d" n (List.length args);
      List.iteri (fun i v -> b.Value.b_frame.(b.Value.b_regs.(i)) <- v) args;
      cc ctx b.Value.b_env b.Value.b_frame
    | None -> !escape_apply ctx fv args)
  | Value.Primv name -> (
    let d =
      match Prim.find name with
      | Some d -> d
      | None -> Runtime.fault "unknown primitive %S" name
    in
    Runtime.charge ctx d.Prim.base_cost;
    match d.Prim.cont_arity with
    | Some nc ->
      let total = List.length args in
      if total < nc then Runtime.fault "%s: expected %d continuations" name nc;
      let rec split i acc = function
        | rest when i = total - nc -> List.rev acc, rest
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> assert false
      in
      let values, conts = split 0 [] args in
      let impl = Runtime.find_impl_exn name in
      let (Runtime.Invoke (k, results)) = impl ctx values conts in
      call_value cu ctx k results
    | None -> Runtime.fault "%s: cannot be applied as a first-class value" name)
  | Value.Oidv oid -> (
    match Value.Heap.get_opt ctx.Runtime.heap oid with
    | Some (Value.Func fo) -> (
      match !oid_entry ctx oid fo with
      | Some entry -> entry ctx args
      | None -> call_value cu ctx (Compile.compile_func ctx fo) args)
    | Some _ -> Runtime.fault "%s is not applicable" (Oid.to_string oid)
    | None -> Runtime.fault "dangling function reference %s" (Oid.to_string oid))
  | Value.Halt ok -> (
    match args with
    | [ v ] -> if ok then Eval.Done v else Eval.Raised v
    | vs -> Runtime.fault "halt continuation received %d values" (List.length vs))
  | v -> !escape_apply ctx v args

(* entry used by {!Tierup}: apply function [fn] of a compiled unit with
   a pre-resolved environment, charging like an [Mclosure] application *)
let apply_func cu ~fn ~env ctx args = apply_centry cu.funcs.(fn) ctx env args
