(** Persistent reflective specialization cache.

    [Reflect.optimize] specializes a stored function against the literal
    forms of its re-established λ-bindings; the result is a pure function
    of (callee PTML, binding literals, optimizer configuration) and of the
    store objects the rewrite rules consulted.  This cache remembers those
    results so a repeated specialization — the common case on a hot link
    path, and {e every} case after reopening a durable image — costs a
    lookup instead of an optimizer run.

    Entries are keyed by (callee OID, fingerprint) and carry a dependency
    list of (OID, content digest) pairs covering everything the
    optimization read from the rest of the store.  A hit is served only
    after every dependency's current digest matches (verify-on-hit); a
    mismatch drops the entry and reports a miss.  Digests are restricted
    to what specialization can observe: a function's PTML and binding
    literals (not its derived attributes), a relation's name, indexed
    fields and triggers (not its rows — rows influence execution, never
    plan shape), a vector/tuple's literal slots, only the length of
    mutable arrays and byte arrays.

    The table is bounded by an LRU ([set_capacity], default 256 entries)
    and serializes to a compact binary form that the REPL session manifest
    persists through the log store, so a reopened image skips
    re-optimization entirely.

    Like [Analysis.Cache], entries are keyed by OID and therefore scoped
    to one heap: contexts that create fresh heaps (the fuzz oracle) must
    [clear].  Rebinding or mutating a function must [invalidate] it. *)

type outcome = {
  sc_ptml : string;  (** optimized body, PTML-encoded *)
  sc_attrs : (string * int) list;  (** derived attributes for the function object *)
  sc_inlined : int;
  sc_rounds : int;
  sc_penalty : int;
  sc_expansions : int;
  sc_size_before : int;
  sc_size_after : int;
  sc_cost_before : int;
  sc_cost_after : int;
  sc_prov : Tml_obs.Provenance.t;
      (** derivation log of the original specialization, so a warm hit
          (including after a durable reopen) can still explain itself *)
}

(** [fingerprint ~ptml ~bindings ~config] digests the callee-side key
    material: the stored PTML, the literal forms of the bindings (live
    closures contribute a fixed marker — they stay free in the specialized
    code), and a rendering of the optimizer configuration. *)
val fingerprint :
  ptml:string -> bindings:(Tml_core.Ident.t * Value.t) list -> config:string -> string

(** [find heap ~callee ~fp] returns the cached outcome after verifying
    every recorded dependency digest against the current store (faulting
    unloaded objects in via [Heap.get_opt]).  A verification failure
    drops the entry and counts as a miss. *)
val find : Value.Heap.heap -> callee:Tml_core.Oid.t -> fp:string -> outcome option

(** [store heap ~callee ~fp ~deps outcome] records a specialization,
    digesting each dependency in the store state the optimization
    observed.  The callee itself is excluded from [deps] (the fingerprint
    covers it).  May evict LRU entries beyond the capacity. *)
val store :
  Value.Heap.heap -> callee:Tml_core.Oid.t -> fp:string -> deps:Tml_core.Oid.t list ->
  outcome -> unit

(** [invalidate oid] drops every entry specialized {e for} [oid] or
    {e depending on} [oid] — call on rebinding, in-place mutation, or any
    store update that bypasses digest verification. *)
val invalidate : Tml_core.Oid.t -> unit

(** [subscribe_invalidate f] arranges for [f oid] to run on every
    {!invalidate}, before entries are dropped and regardless of whether
    any entry matched.  The tiered-execution policy ({!Tierup})
    subscribes so plan-relevant store mutations also deoptimize compiled
    code.  Subscriptions are permanent and process-global. *)
val subscribe_invalidate : (Tml_core.Oid.t -> unit) -> unit

val clear : unit -> unit
val length : unit -> int
val set_capacity : int -> unit

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable verify_failures : int;
  mutable invalidations : int;
  mutable evictions : int;
}

val stats : unit -> stats

(** Zero the counters without touching the cached entries. *)
val reset_stats : unit -> unit

(** Register the counters (plus current entry count) as the
    ["speccache"] source in the [Tml_obs.Metrics] registry. *)
val register_metrics : unit -> unit

(** {1 Serialization} *)

exception Corrupt of string

val encode : unit -> string

(** [decode s] replaces the cache contents.  @raise Corrupt on a malformed
    image. *)
val decode : string -> unit

(** [obj_digest obj] — the per-kind content digest (exposed for tests). *)
val obj_digest : Value.obj -> string
