open Tml_core

let fail fmt = Format.kasprintf failwith fmt

(* Continuation argument positions that escape into data structures and must
   therefore be materialized as closures rather than inline blocks. *)
let escaping_cont_positions = function
  | "pushHandler" -> [ 0 ]
  | _ -> []

type state = {
  mutable funcs : Instr.func option array;
  mutable count : int;
}

let reserve st =
  if st.count >= Array.length st.funcs then begin
    let bigger = Array.make (max 8 (2 * Array.length st.funcs)) None in
    Array.blit st.funcs 0 bigger 0 st.count;
    st.funcs <- bigger
  end;
  let ix = st.count in
  st.count <- ix + 1;
  ix

type frame = {
  mutable map : Instr.operand Ident.Map.t;
  mutable nregs : int;
}

let fresh_reg frame =
  let r = frame.nregs in
  frame.nregs <- r + 1;
  r

let bind frame id op = frame.map <- Ident.Map.add id op frame.map

let operand frame (v : Term.value) : Instr.operand =
  match v with
  | Term.Lit l -> Instr.Const l
  | Term.Prim name -> Instr.Primconst name
  | Term.Var id -> (
    match Ident.Map.find_opt id frame.map with
    | Some op -> op
    | None -> fail "Compile: unbound identifier %s" (Ident.to_string id))
  | Term.Abs _ -> fail "Compile.operand: abstraction needs a closure"

let rec comp_fn st name (abs : Term.abs) : int * Ident.t list =
  let frees = Ident.Set.elements (Term.free_vars_value (Term.Abs abs)) in
  let frame = { map = Ident.Map.empty; nregs = 0 } in
  List.iteri (fun i p -> bind frame p (Instr.Reg i)) abs.Term.params;
  frame.nregs <- List.length abs.Term.params;
  List.iteri (fun j id -> bind frame id (Instr.Env j)) frees;
  (* Reserve the slot before compiling the body: nested functions are
     appended while this one is being built. *)
  let ix = reserve st in
  let body = comp_app st frame abs.Term.body in
  st.funcs.(ix) <-
    Some
      { Instr.fn_name = name; arity = List.length abs.Term.params; nregs = frame.nregs; body };
  ix, frees

(* Prepare a list of argument values: abstractions are compiled to closures
   allocated just before the instruction that uses them. *)
and prepare st frame (vs : Term.value list) : Instr.closdef list * Instr.operand list =
  let defs = ref [] in
  let ops =
    List.map
      (fun v ->
        match v with
        | Term.Abs a ->
          let fn, frees = comp_fn st "anon" a in
          let captures = Array.of_list (List.map (fun id -> operand frame (Term.Var id)) frees) in
          let dst = fresh_reg frame in
          defs := { Instr.dst; fn; captures } :: !defs;
          Instr.Reg dst
        | _ -> operand frame v)
      vs
  in
  List.rev !defs, ops

and with_closures defs code = if defs = [] then code else Instr.Close (defs, code)

and comp_app st frame (a : Term.app) : Instr.code =
  match a.Term.func with
  | Term.Prim "Y" -> comp_y st frame a
  | Term.Prim name -> comp_prim st frame name a
  | Term.Abs f ->
    (* β-redex kept by the optimizer: parameters alias their arguments. *)
    if List.length f.Term.params <> List.length a.Term.args then
      fail "Compile: β-redex arity mismatch";
    let defs = ref [] in
    List.iter2
      (fun p arg ->
        match arg with
        | Term.Abs ab ->
          let fn, frees = comp_fn st (Ident.to_string p) ab in
          let captures =
            Array.of_list (List.map (fun id -> operand frame (Term.Var id)) frees)
          in
          let dst = fresh_reg frame in
          defs := { Instr.dst; fn; captures } :: !defs;
          bind frame p (Instr.Reg dst)
        | _ -> bind frame p (operand frame arg))
      f.Term.params a.Term.args;
    with_closures (List.rev !defs) (comp_app st frame f.Term.body)
  | (Term.Var _ | Term.Lit _) as func ->
    let defs, ops = prepare st frame (func :: a.Term.args) in
    (match ops with
    | f :: args -> with_closures defs (Instr.Tailcall (f, args))
    | [] -> assert false)

and comp_prim st frame name (a : Term.app) : Instr.code =
  (* split arguments into values and continuations using the static shape *)
  let values, conts =
    match name with
    | "==" -> (
      match Primitives.case_split a.Term.args with
      | Some (scrutinee, tags, branches, default) ->
        ( scrutinee :: tags,
          branches
          @ (match default with
            | Some d -> [ d ]
            | None -> []) )
      | None -> fail "Compile: malformed == application")
    | _ -> (
      match Prim.find name with
      | Some { Prim.cont_arity = Some nc; _ } ->
        let total = List.length a.Term.args in
        if total < nc then fail "Compile: %s: missing continuations" name;
        let rec split i acc = function
          | rest when i = total - nc -> List.rev acc, rest
          | x :: rest -> split (i + 1) (x :: acc) rest
          | [] -> assert false
        in
        split 0 [] a.Term.args
      | Some { Prim.cont_arity = None; _ } -> fail "Compile: %s: unknown shape" name
      | None -> fail "Compile: unknown primitive %S" name)
  in
  let escaping = escaping_cont_positions name in
  let defs, valops = prepare st frame values in
  let extra_defs = ref [] in
  let specs =
    List.mapi
      (fun i c ->
        match c with
        | Term.Abs ab when not (List.mem i escaping) ->
          (* inline block: the continuation's parameters get fresh registers
             of the current frame *)
          let regs = Array.of_list (List.map (fun _ -> fresh_reg frame) ab.Term.params) in
          List.iteri (fun j p -> bind frame p (Instr.Reg regs.(j))) ab.Term.params;
          let code = comp_app st frame ab.Term.body in
          Instr.Cblock (regs, code)
        | Term.Abs ab ->
          let fn, frees = comp_fn st (name ^ "-handler") ab in
          let captures =
            Array.of_list (List.map (fun id -> operand frame (Term.Var id)) frees)
          in
          let dst = fresh_reg frame in
          extra_defs := { Instr.dst; fn; captures } :: !extra_defs;
          Instr.Cval (Instr.Reg dst)
        | other -> Instr.Cval (operand frame other))
      conts
  in
  with_closures (defs @ List.rev !extra_defs) (Instr.Primop (name, valops, specs))

and comp_y st frame (a : Term.app) : Instr.code =
  match a.Term.args with
  | [ binder ] -> (
    match Primitives.y_split binder with
    | Some (c0, vs, _c, k0, abss) ->
      (* allocate destination registers for the whole nest first, so that
         the members' captures can refer to each other *)
      let members = (c0, k0) :: List.combine vs abss in
      let with_regs =
        List.map
          (fun (v, abs_v) ->
            let dst = fresh_reg frame in
            bind frame v (Instr.Reg dst);
            v, abs_v, dst)
          members
      in
      let defs =
        List.map
          (fun (v, abs_v, dst) ->
            match abs_v with
            | Term.Abs ab ->
              let fn, frees = comp_fn st (Ident.to_string v) ab in
              let captures =
                Array.of_list (List.map (fun id -> operand frame (Term.Var id)) frees)
              in
              { Instr.dst; fn; captures }
            | _ -> fail "Compile: Y nest member is not an abstraction")
          with_regs
      in
      let entry =
        match with_regs with
        | (_, _, dst) :: _ -> dst
        | [] -> assert false
      in
      Instr.Fix (defs, Instr.Tailcall (Instr.Reg entry, []))
    | None -> fail "Compile: malformed Y application")
  | _ -> fail "Compile: Y expects one argument"

let compile_abs ~name (abs : Term.abs) : Instr.unit_code * Ident.t list =
  Runtime.install ();
  let st = { funcs = Array.make 8 None; count = 0 } in
  let entry, frees = comp_fn st name abs in
  let funcs =
    Array.init st.count (fun i ->
        match st.funcs.(i) with
        | Some f -> f
        | None -> fail "Compile: unfinished function slot %d" i)
  in
  { Instr.funcs; entry }, frees

let compile_func _ctx (fo : Value.func_obj) : Value.t =
  match fo.Value.fo_mach_impl with
  | Some impl -> impl
  | None ->
    let impl =
      match fo.Value.fo_tml with
      | Term.Prim name ->
        (* η-reduction can leave a bare primitive as the whole function *)
        Value.Primv name
      | Term.Lit l -> Value.of_literal l
      | Term.Var _ ->
        Runtime.fault "function object %s is an unbound variable" fo.Value.fo_name
      | Term.Abs abs ->
        let unit_code, frees =
          match fo.Value.fo_code with
          | Some u ->
            (* recompute layout deterministically *)
            u, Ident.Set.elements (Term.free_vars_value fo.Value.fo_tml)
          | None -> compile_abs ~name:fo.Value.fo_name abs
        in
        fo.Value.fo_code <- Some unit_code;
        let env =
          Array.of_list
            (List.map
               (fun id ->
                 match List.find_opt (fun (b, _) -> Ident.equal b id) fo.Value.fo_bindings with
                 | Some (_, v) -> v
                 | None ->
                   Runtime.fault "function %s: unlinked free identifier %s" fo.Value.fo_name
                     (Ident.to_string id))
               frees)
        in
        Value.Mclosure { Value.m_unit = unit_code; m_fn = unit_code.Instr.entry; m_env = env }
    in
    fo.Value.fo_mach_impl <- Some impl;
    impl
