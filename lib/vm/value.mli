(** Runtime values and the persistent object store heap.

    Simple values (integers, characters, booleans, reals, strings, unit) are
    immediate; complex objects (arrays, byte arrays, tuples, modules,
    relations, functions) live in the store and are denoted by OIDs, exactly
    the split TML literals make (section 2.2).

    Functions are store objects ([Func]) that carry, alongside their
    executable representations, the persistent TML tree (PTML) and the
    runtime R-value bindings of their free identifiers — the material the
    reflective optimizer of section 4.1 works from. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Char of char
  | Real of float
  | Str of string
  | Oidv of Tml_core.Oid.t       (** reference into the store *)
  | Primv of string              (** a primitive procedure as a value *)
  | Closure of tree_closure      (** tree-walking-evaluator closure *)
  | Mclosure of mclosure         (** abstract-machine closure *)
  | Mblock of mblock             (** materialized inline continuation block *)
  | Halt of bool                 (** sentinel continuation: [true] = normal result,
                                     [false] = uncaught exception *)

and tree_closure = {
  t_abs : Tml_core.Term.abs;
  mutable t_env : t Tml_core.Ident.Map.t;
      (** mutable so that [Y] can tie recursive knots *)
}

and mclosure = {
  m_unit : Instr.unit_code;
  m_fn : int;
  m_env : t array;
}

and mblock = {
  b_frame : t array;       (** the frame of the enclosing invocation *)
  b_unit : Instr.unit_code;
  b_env : t array;         (** environment of the enclosing closure *)
  b_regs : int array;
  b_code : Instr.code;
}

(** {1 Store objects} *)

type obj =
  | Array of t array    (** mutable *)
  | Vector of t array   (** immutable *)
  | Bytes of bytes      (** mutable byte array *)
  | Tuple of t array    (** immutable record *)
  | Module of module_obj
  | Relation of relation
  | Func of func_obj
  | Index of index_obj   (** persistent secondary hash index of a relation *)
  | Stats of stats_obj   (** per-relation cardinality statistics *)

and module_obj = {
  mod_name : string;
  exports : (string * t) array;  (** name → value; immutable after linking *)
}

and relation = {
  rel_name : string;
  rel_page_size : int;
  mutable rel_pages : Tml_core.Oid.t array;
      (** sealed row pages, each a [Vector] of exactly [rel_page_size] rows
          ([Oidv]s of [Tuple]s), faulted on demand through the store — the
          header never materializes the full row array *)
  mutable rel_tail : t array;
      (** growable tail buffer for the unfilled last page (capacity array) *)
  mutable rel_tail_len : int;  (** valid prefix of [rel_tail] *)
  mutable rel_count : int;     (** total logical row count *)
  mutable rel_indexes : (int * Tml_core.Oid.t) list;
      (** hash indexes: field position → sibling [Index] store object,
          maintained incrementally by [Tml_query.Rel.insert] and
          committed/recovered with the relation *)
  mutable rel_stats : Tml_core.Oid.t option;
      (** sibling [Stats] store object feeding the cost-based planner *)
  mutable rel_triggers : t list;
      (** stored trigger procedures ([Oidv] of functions), invoked with each
          inserted tuple — "the body of database triggers may refer to
          programming language statements" (section 4.2): they are ordinary
          persistent functions the reflective optimizer can rewrite *)
  mutable rel_rows_cache : t array option;
      (** transient materialization for positional ([], size, move) access;
          invalidated on insert, never serialized *)
}

and index_obj = {
  ix_field : int;  (** the indexed tuple field *)
  ix_tbl : (Tml_core.Literal.t, int list) Hashtbl.t;  (** key → row positions *)
}

and stats_obj = {
  mutable st_count : int;   (** row count at last maintenance *)
  mutable st_arity : int;   (** tuple width, [-1] when unknown/heterogeneous *)
  mutable st_distinct : (int * int) list;
      (** per-indexed-field distinct-key counts (field → distinct) *)
}

and func_obj = {
  fo_name : string;
  fo_tml : Tml_core.Term.value;  (** the [proc] abstraction, with free global identifiers *)
  fo_ptml : string;              (** compact persistent TML (section 4.1) *)
  mutable fo_bindings : (Tml_core.Ident.t * t) list;
      (** R-value bindings ([identifier, value] pairs) established at link
          time for the free identifiers of [fo_tml] *)
  mutable fo_tree_impl : t option;  (** cached linked tree closure *)
  mutable fo_mach_impl : t option;  (** cached compiled machine closure *)
  mutable fo_code : Instr.unit_code option;  (** cached compiled code *)
  mutable fo_attrs : (string * int) list;
      (** derived attributes (costs, savings, ...) attached by the optimizer
          and kept with the persistent system state *)
}

(** {1 Heap} *)

module Heap : sig
  type heap

  val create : unit -> heap
  val alloc : heap -> obj -> Tml_core.Oid.t

  (** @raise Invalid_argument on a dangling OID. *)
  val get : heap -> Tml_core.Oid.t -> obj

  val get_opt : heap -> Tml_core.Oid.t -> obj option
  val set : heap -> Tml_core.Oid.t -> obj -> unit
  val size : heap -> int

  val generation : heap -> int
  (** monotonic counter bumped on every [set], [evict] and hook change;
      the compiled tier keys per-site inline caches on it so a cached
      dereference can never outlive a slot replacement or a newly
      attached store observer *)

  (** [iter f heap] applies [f] to every live object.  On a store-backed
      heap only materialized objects are visited; no faulting happens. *)
  val iter : (Tml_core.Oid.t -> obj -> unit) -> heap -> unit

  (** {2 Backing-store hooks}

      A durable store ([Pstore]) attaches itself to a heap through three
      hooks, making dereference the faulting point: [get]/[get_opt] on an
      empty slot consult the fault hook and install whatever object it
      returns; every access to a present object reports to the access
      hook (dirty tracking, LRU recency); every [set] reports to the
      update hook.  A heap with no hooks behaves exactly as before —
      empty slots are dangling references. *)

  val set_fault_hook : heap -> (Tml_core.Oid.t -> obj option) -> unit
  val set_access_hook : heap -> (Tml_core.Oid.t -> obj -> unit) -> unit
  val set_update_hook : heap -> (Tml_core.Oid.t -> obj -> unit) -> unit

  (** Read / replace the current access and fault hooks.  Temporary
      observers (the specialization cache's dependency recorder) chain
      themselves in front of whatever the backing store installed and
      restore the saved hooks when done.  Both must be wrapped to see
      every dereference: a first touch of an unloaded object reports to
      the fault hook only, later touches to the access hook only. *)
  val access_hook : heap -> (Tml_core.Oid.t -> obj -> unit) option

  val set_access_hook_opt : heap -> (Tml_core.Oid.t -> obj -> unit) option -> unit
  val fault_hook : heap -> (Tml_core.Oid.t -> obj option) option
  val set_fault_hook_opt : heap -> (Tml_core.Oid.t -> obj option) option -> unit
  val update_hook : heap -> (Tml_core.Oid.t -> obj -> unit) option
  val set_update_hook_opt : heap -> (Tml_core.Oid.t -> obj -> unit) option -> unit

  val clear_hooks : heap -> unit
  (** detach the backing store: the heap keeps its materialized objects
      and reverts to plain in-memory behaviour *)

  val reserve : heap -> int -> unit
  (** [reserve heap n] extends the address space so OIDs [0..n-1] are
      valid (empty slots); used when opening a store whose objects are
      faulted in on demand *)

  val peek : heap -> Tml_core.Oid.t -> obj option
  (** like [get_opt] but never faults and fires no hooks — a raw slot
      read for the store's own bookkeeping *)

  val evict : heap -> Tml_core.Oid.t -> unit
  (** drop a materialized object, returning its slot to the faultable
      state.  Only safe for clean objects of a store-backed heap: on a
      plain heap this turns the OID into a dangling reference. *)

  val is_loaded : heap -> Tml_core.Oid.t -> bool
  (** whether the slot is materialized (no hooks fired) *)

  val loaded_count : heap -> int
  (** number of materialized slots *)

  (** [alloc_func heap ~name tml] allocates a [Func] object, computing its
      PTML encoding; bindings start empty. *)
  val alloc_func : heap -> name:string -> Tml_core.Term.value -> Tml_core.Oid.t
end

(** {1 Operations} *)

(** [identical a b] — object identity, the relation tested by the ["=="]
    primitive: immediate values compare by value (reals bit-for-bit), store
    references by OID, closures physically. *)
val identical : t -> t -> bool

(** [of_literal l] injects a TML literal. *)
val of_literal : Tml_core.Literal.t -> t

(** [to_literal v] projects immediate values (and OIDs) back to literals —
    the bridge the reflective optimizer uses to rebind runtime values inside
    TML terms.  Closures and blocks have no literal form. *)
val to_literal : t -> Tml_core.Literal.t option

val type_name : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
