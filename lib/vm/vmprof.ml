(* Step-bucket profiler: between two stored-function applications on
   the same ctx, every step charged belongs to the first function.
   Recording is two hashtable operations per application when enabled,
   a single ref read when not. *)

let enabled = ref false

type slot = { mutable s_steps : int; mutable s_calls : int }

(* key = (tier, "name#oid") *)
let table : (string * string, slot) Hashtbl.t = Hashtbl.create 64

(* The open attribution window: which function is running, on which
   ctx, and what the step counter read when it started.  The ctx is
   kept to guard against interleaved runs from different sessions —
   a delta is only meaningful against the same counter. *)
let window : (Runtime.ctx * (string * string) * int) option ref = ref None

let slot key =
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
    let s = { s_steps = 0; s_calls = 0 } in
    Hashtbl.replace table key s;
    s

let close_window ctx =
  match !window with
  | Some (wctx, key, steps0) when wctx == ctx ->
    let d = ctx.Runtime.steps - steps0 in
    if d > 0 then begin
      let s = slot key in
      s.s_steps <- s.s_steps + d
    end
  | _ -> ()

let note_apply ctx ~tier ~name ~oid =
  close_window ctx;
  let key = (tier, Printf.sprintf "%s#%d" name oid) in
  (slot key).s_calls <- (slot key).s_calls + 1;
  window := Some (ctx, key, ctx.Runtime.steps)

let flush ctx =
  close_window ctx;
  (match !window with
   | Some (wctx, _, _) when wctx == ctx -> window := None
   | _ -> ())

let reset () =
  Hashtbl.reset table;
  window := None

type sample = { vp_key : string; vp_tier : string; vp_steps : int; vp_calls : int }

let samples () =
  Hashtbl.fold
    (fun (tier, key) s acc ->
      { vp_key = key; vp_tier = tier; vp_steps = s.s_steps; vp_calls = s.s_calls }
      :: acc)
    table []
  |> List.sort (fun a b ->
         match compare b.vp_steps a.vp_steps with
         | 0 -> compare a.vp_key b.vp_key
         | c -> c)

let total_steps () = List.fold_left (fun acc s -> acc + s.vp_steps) 0 (samples ())

let collapsed () =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      if s.vp_steps > 0 then
        Buffer.add_string buf (Printf.sprintf "%s;%s %d\n" s.vp_tier s.vp_key s.vp_steps))
    (samples ());
  Buffer.contents buf

let pp fmt () =
  let ss = samples () in
  let total = total_steps () in
  if ss = [] then Format.fprintf fmt "vm profile: no samples@."
  else begin
    Format.fprintf fmt "vm profile (%d steps attributed):@." total;
    Format.fprintf fmt "  %8s  %6s  %8s  %-7s %s@." "steps" "%" "calls" "tier" "function";
    List.iter
      (fun s ->
        if s.vp_steps > 0 || s.vp_calls > 0 then
          Format.fprintf fmt "  %8d  %5.1f%%  %8d  %-7s %s@." s.vp_steps
            (if total = 0 then 0. else 100. *. float_of_int s.vp_steps /. float_of_int total)
            s.vp_calls s.vp_tier s.vp_key)
      ss
  end
