open Tml_core

type outcome =
  | Done of Value.t
  | Raised of Value.t
  | No_fuel
  | Fault of string

let pp_outcome ppf = function
  | Done v -> Format.fprintf ppf "done %a" Value.pp v
  | Raised v -> Format.fprintf ppf "raised %a" Value.pp v
  | No_fuel -> Format.pp_print_string ppf "out of fuel"
  | Fault msg -> Format.fprintf ppf "fault: %s" msg

let outcome_equal a b =
  match a, b with
  | Done x, Done y | Raised x, Raised y -> Value.identical x y
  | No_fuel, No_fuel -> true
  | Fault _, Fault _ -> true
  | _ -> false

let eval_value ctx ~env (v : Term.value) : Value.t =
  match v with
  | Term.Lit l -> Value.of_literal l
  | Term.Var id -> (
    match Ident.Map.find_opt id env with
    | Some rv -> rv
    | None -> Runtime.fault "unbound identifier %s" (Ident.to_string id))
  | Term.Prim name -> Value.Primv name
  | Term.Abs a ->
    ignore ctx;
    Value.Closure { Value.t_abs = a; t_env = env }

(* Split an evaluated argument list into values and continuations using the
   static shape of the application. *)
let split_args name (term_args : Term.value list) (evaled : Value.t list) =
  match name with
  | "==" -> (
    match Primitives.case_split term_args with
    | Some (_, tags, branches, default) ->
      let n_values = 1 + List.length tags in
      let n_conts = List.length branches + (if default = None then 0 else 1) in
      ignore n_conts;
      let rec split i acc = function
        | rest when i = n_values -> List.rev acc, rest
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> Runtime.fault "==: missing arguments"
      in
      split 0 [] evaled
    | None -> Runtime.fault "==: malformed application")
  | _ -> (
    match Prim.find name with
    | None -> Runtime.fault "unknown primitive %S" name
    | Some d -> (
      match d.cont_arity with
      | Some nc ->
        let total = List.length evaled in
        if total < nc then Runtime.fault "%s: expected %d continuations" name nc;
        let rec split i acc = function
          | rest when i = total - nc -> List.rev acc, rest
          | x :: rest -> split (i + 1) (x :: acc) rest
          | [] -> assert false
        in
        split 0 [] evaled
      | None -> Runtime.fault "%s: dynamic shape not supported" name))

let rec exec ctx env (a : Term.app) : outcome =
  match a.Term.func with
  | Term.Prim "Y" -> exec_y ctx env a
  | Term.Prim name ->
    let cost =
      match Prim.find name with
      | Some d -> d.base_cost
      | None -> 1
    in
    Runtime.charge ctx cost;
    let evaled = List.map (eval_value ctx ~env) a.Term.args in
    let values, conts = split_args name a.Term.args evaled in
    let impl = Runtime.find_impl_exn name in
    let (Runtime.Invoke (k, results)) = impl ctx values conts in
    apply ctx k results
  | func ->
    let f = eval_value ctx ~env func in
    let args = List.map (eval_value ctx ~env) a.Term.args in
    apply ctx f args

and exec_y ctx env (a : Term.app) : outcome =
  Runtime.charge ctx 2;
  match a.Term.args with
  | [ binder ] -> (
    match Primitives.y_split binder with
    | Some (c0, vs, _c, k0, abss) ->
      let close v =
        match v with
        | Term.Abs ab -> { Value.t_abs = ab; t_env = env }
        | _ -> Runtime.fault "Y: non-abstraction in fixpoint nest"
      in
      let k0_clo = close k0 in
      let vs_clos = List.map close abss in
      (* Tie the knot: all closures see the recursive bindings. *)
      let env' =
        List.fold_left2
          (fun e v clo -> Ident.Map.add v (Value.Closure clo) e)
          (Ident.Map.add c0 (Value.Closure k0_clo) env)
          vs vs_clos
      in
      k0_clo.Value.t_env <- env';
      List.iter (fun clo -> clo.Value.t_env <- env') vs_clos;
      apply ctx (Value.Closure k0_clo) []
    | None -> Runtime.fault "Y: malformed binder")
  | _ -> Runtime.fault "Y: expected exactly one argument"

and apply ctx (f : Value.t) (args : Value.t list) : outcome =
  match f with
  | Value.Closure c ->
    Runtime.charge ctx (1 + List.length args);
    let params = c.Value.t_abs.Term.params in
    if List.length params <> List.length args then
      Runtime.fault "closure of %d parameters applied to %d arguments" (List.length params)
        (List.length args);
    let env =
      List.fold_left2 (fun e p v -> Ident.Map.add p v e) c.Value.t_env params args
    in
    exec ctx env c.Value.t_abs.Term.body
  | Value.Primv name ->
    (* A primitive used as a first-class value: its argument shape is
       recovered from the registered arities. *)
    let d =
      match Prim.find name with
      | Some d -> d
      | None -> Runtime.fault "unknown primitive %S" name
    in
    Runtime.charge ctx d.base_cost;
    (match d.cont_arity with
    | Some nc ->
      let total = List.length args in
      if total < nc then Runtime.fault "%s: expected %d continuations" name nc;
      let rec split i acc = function
        | rest when i = total - nc -> List.rev acc, rest
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> assert false
      in
      let values, conts = split 0 [] args in
      let impl = Runtime.find_impl_exn name in
      let (Runtime.Invoke (k, results)) = impl ctx values conts in
      apply ctx k results
    | None -> Runtime.fault "%s: cannot be applied as a first-class value" name)
  | Value.Oidv oid -> (
    match Value.Heap.get_opt ctx.Runtime.heap oid with
    | Some (Value.Func fo) -> apply ctx (func_impl ctx fo) args
    | Some _ -> Runtime.fault "%s is not applicable" (Oid.to_string oid)
    | None -> Runtime.fault "dangling function reference %s" (Oid.to_string oid))
  | Value.Halt ok -> (
    match args with
    | [ v ] -> if ok then Done v else Raised v
    | vs -> Runtime.fault "halt continuation received %d values" (List.length vs))
  | Value.Mclosure _ | Value.Mblock _ ->
    Runtime.fault "cannot apply a machine closure in the tree-walking evaluator"
  | v -> Runtime.fault "cannot apply %s" (Value.type_name v)

and func_impl _ctx (fo : Value.func_obj) : Value.t =
  match fo.Value.fo_tree_impl with
  | Some impl -> impl
  | None ->
    let env =
      List.fold_left
        (fun e (id, v) -> Ident.Map.add id v e)
        Ident.Map.empty fo.Value.fo_bindings
    in
    let impl =
      match fo.Value.fo_tml with
      | Term.Abs a -> Value.Closure { Value.t_abs = a; t_env = env }
      | Term.Prim name ->
        (* η-reduction can leave a bare primitive as the whole function *)
        Value.Primv name
      | Term.Lit l -> Value.of_literal l
      | Term.Var _ ->
        Runtime.fault "function object %s is an unbound variable" fo.Value.fo_name
    in
    fo.Value.fo_tree_impl <- Some impl;
    impl

let protect ctx f =
  let saved = ctx.Runtime.subcall in
  let restore () = ctx.Runtime.subcall <- saved in
  (* Install this engine for re-entrant calls made by higher-order
     primitives. *)
  (ctx.Runtime.subcall <-
     (fun fv args ->
       match apply ctx fv (args @ [ Value.Halt false; Value.Halt true ]) with
       | Done v -> Ok v
       | Raised v -> Error v
       | No_fuel -> raise Runtime.Fuel_exhausted
       | Fault msg -> raise (Runtime.Fault msg)));
  match f () with
  | outcome ->
    restore ();
    outcome
  | exception Runtime.Fuel_exhausted ->
    restore ();
    No_fuel
  | exception Runtime.Fault msg ->
    restore ();
    Fault msg

let run_app ctx ~env a = protect ctx (fun () -> exec ctx env a)
let apply ctx f args = protect ctx (fun () -> apply ctx f args)

let run_proc ctx proc args =
  let steps0 = ctx.Runtime.steps in
  let outcome = apply ctx proc (args @ [ Value.Halt false; Value.Halt true ]) in
  Tml_obs.Events.vm_run ~engine:"eval" ~steps:(ctx.Runtime.steps - steps0);
  outcome

let eval_value ctx ~env v = eval_value ctx ~env v
let func_impl ctx fo = func_impl ctx fo
