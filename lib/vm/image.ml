open Tml_core
module Codec = Tml_store.Codec

exception Image_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Image_error s)) fmt

let magic = "TMLIMG1"

let save heap =
  let w = Codec.W.create ~initial:4096 () in
  Codec.W.raw w magic;
  Codec.W.varint w (Value.Heap.size heap);
  (try
     for ix = 0 to Value.Heap.size heap - 1 do
       match Value.Heap.get_opt heap (Oid.of_int ix) with
       | Some obj ->
         Codec.W.u8 w 1;
         Obj_codec.w_obj w obj
       | None -> Codec.W.u8 w 0
     done
   with
  | Obj_codec.Codec_error msg -> fail "%s" msg);
  Codec.W.contents w

let load bytes =
  let r = Codec.R.of_string bytes in
  (try
     let m = Codec.R.raw r (String.length magic) in
     if m <> magic then fail "bad image magic"
   with
  | Codec.R.Truncated | Codec.R.Malformed _ -> fail "truncated image");
  let n = Codec.R.varint r in
  if n > 50_000_000 then fail "implausible image size %d" n;
  let heap = Value.Heap.create () in
  let rebuilds = ref [] in
  (try
     for ix = 0 to n - 1 do
       match Codec.R.u8 r with
       | 0 ->
         (* hole: allocate a placeholder to keep OIDs aligned *)
         ignore (Value.Heap.alloc heap (Value.Vector [||]))
       | 1 ->
         let obj, indexed_fields = Obj_codec.r_obj r in
         let oid = Value.Heap.alloc heap obj in
         assert (Oid.to_int oid = ix);
         if indexed_fields <> [] then rebuilds := (oid, indexed_fields) :: !rebuilds
       | t -> fail "bad slot tag %d" t
     done
   with
  | Codec.R.Truncated | Codec.R.Malformed _ -> fail "truncated image"
  | Obj_codec.Codec_error msg -> fail "%s" msg);
  (* Rebuild relation indexes against the loaded heap. *)
  (try
     List.iter
       (fun (oid, fields) -> Obj_codec.rebuild_relation_indexes heap oid fields)
       !rebuilds
   with
  | Obj_codec.Codec_error msg -> fail "%s" msg);
  heap

let save_file heap path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save heap))

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      load (really_input_string ic n))
