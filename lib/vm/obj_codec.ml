open Tml_core
module Codec = Tml_store.Codec

exception Codec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codec_error s)) fmt

let w_value w (v : Value.t) =
  match v with
  | Value.Unit -> Codec.W.u8 w 0
  | Value.Bool false -> Codec.W.u8 w 1
  | Value.Bool true -> Codec.W.u8 w 2
  | Value.Int i ->
    Codec.W.u8 w 3;
    Codec.W.svarint w i
  | Value.Char c ->
    Codec.W.u8 w 4;
    Codec.W.u8 w (Char.code c)
  | Value.Real r ->
    Codec.W.u8 w 5;
    Codec.W.float64 w r
  | Value.Str s ->
    Codec.W.u8 w 6;
    Codec.W.str w s
  | Value.Oidv o ->
    Codec.W.u8 w 7;
    Codec.W.varint w (Oid.to_int o)
  | Value.Primv name ->
    Codec.W.u8 w 8;
    Codec.W.str w name
  | Value.Closure _ | Value.Mclosure _ | Value.Mblock _ | Value.Halt _ ->
    fail "cannot persist a live %s (functions must be store objects)" (Value.type_name v)

let r_value r : Value.t =
  match Codec.R.u8 r with
  | 0 -> Value.Unit
  | 1 -> Value.Bool false
  | 2 -> Value.Bool true
  | 3 -> Value.Int (Codec.R.svarint r)
  | 4 -> Value.Char (Char.chr (Codec.R.u8 r land 0xff))
  | 5 -> Value.Real (Codec.R.float64 r)
  | 6 -> Value.Str (Codec.R.str r)
  | 7 -> Value.Oidv (Oid.of_int (Codec.R.varint r))
  | 8 -> Value.Primv (Codec.R.str r)
  | t -> fail "bad value tag %d" t

let w_values w vs =
  Codec.W.varint w (Array.length vs);
  Array.iter (w_value w) vs

let r_values r =
  let n = Codec.R.varint r in
  Array.init n (fun _ -> r_value r)

let w_ident w (id : Ident.t) =
  Codec.W.str w id.Ident.name;
  Codec.W.varint w id.Ident.stamp;
  Codec.W.u8 w (if Ident.is_cont id then 1 else 0)

let r_ident r =
  let name = Codec.R.str r in
  let stamp = Codec.R.varint r in
  let sort = if Codec.R.u8 r = 1 then Ident.Cont else Ident.Value in
  Ident.make ~name ~stamp ~sort

let w_obj w (obj : Value.obj) =
  match obj with
  | Value.Array vs ->
    Codec.W.u8 w 0;
    w_values w vs
  | Value.Vector vs ->
    Codec.W.u8 w 1;
    w_values w vs
  | Value.Bytes b ->
    Codec.W.u8 w 2;
    Codec.W.str w (Bytes.to_string b)
  | Value.Tuple vs ->
    Codec.W.u8 w 3;
    w_values w vs
  | Value.Module m ->
    Codec.W.u8 w 4;
    Codec.W.str w m.Value.mod_name;
    Codec.W.varint w (Array.length m.Value.exports);
    Array.iter
      (fun (name, v) ->
        Codec.W.str w name;
        w_value w v)
      m.Value.exports
  | Value.Relation rel ->
    (* REL1: paged relation header. Row pages are separate store
       objects referenced by OID; only the unfilled tail is inline.
       Encoding is canonical (indexes sorted by field) so unchanged
       headers re-encode byte-identically and [Pstore.collect] can skip
       them. *)
    Codec.W.u8 w 7;
    Codec.W.raw w "REL1";
    Codec.W.str w rel.Value.rel_name;
    Codec.W.varint w rel.Value.rel_page_size;
    Codec.W.varint w rel.Value.rel_count;
    Codec.W.varint w (Array.length rel.Value.rel_pages);
    Array.iter (fun oid -> Codec.W.varint w (Oid.to_int oid)) rel.Value.rel_pages;
    Codec.W.varint w rel.Value.rel_tail_len;
    for j = 0 to rel.Value.rel_tail_len - 1 do
      w_value w rel.Value.rel_tail.(j)
    done;
    let indexes =
      List.sort (fun (a, _) (b, _) -> compare a b) rel.Value.rel_indexes
    in
    Codec.W.varint w (List.length indexes);
    List.iter
      (fun (field, oid) ->
        Codec.W.varint w field;
        Codec.W.varint w (Oid.to_int oid))
      indexes;
    (match rel.Value.rel_stats with
    | None -> Codec.W.u8 w 0
    | Some oid ->
      Codec.W.u8 w 1;
      Codec.W.varint w (Oid.to_int oid));
    Codec.W.varint w (List.length rel.Value.rel_triggers);
    List.iter (w_value w) rel.Value.rel_triggers
  | Value.Index ix ->
    (* IDX1: persistent secondary hash index. Canonical bytes: keys
       sorted, positions ascending. *)
    Codec.W.u8 w 8;
    Codec.W.raw w "IDX1";
    Codec.W.varint w ix.Value.ix_field;
    let entries =
      Hashtbl.fold (fun k ps acc -> (k, ps) :: acc) ix.Value.ix_tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Codec.W.varint w (List.length entries);
    List.iter
      (fun (key, positions) ->
        w_value w (Value.of_literal key);
        let positions = List.sort compare positions in
        Codec.W.varint w (List.length positions);
        List.iter (Codec.W.varint w) positions)
      entries
  | Value.Stats st ->
    Codec.W.u8 w 9;
    Codec.W.raw w "STA1";
    Codec.W.varint w st.Value.st_count;
    Codec.W.svarint w st.Value.st_arity;
    let distinct = List.sort (fun (a, _) (b, _) -> compare a b) st.Value.st_distinct in
    Codec.W.varint w (List.length distinct);
    List.iter
      (fun (field, d) ->
        Codec.W.varint w field;
        Codec.W.varint w d)
      distinct
  | Value.Func fo ->
    Codec.W.u8 w 6;
    Codec.W.str w fo.Value.fo_name;
    Codec.W.str w fo.Value.fo_ptml;
    Codec.W.varint w (List.length fo.Value.fo_bindings);
    List.iter
      (fun (id, v) ->
        w_ident w id;
        w_value w v)
      fo.Value.fo_bindings;
    Codec.W.varint w (List.length fo.Value.fo_attrs);
    List.iter
      (fun (name, value) ->
        Codec.W.str w name;
        Codec.W.svarint w value)
      fo.Value.fo_attrs

let r_obj r : Value.obj * int list (* indexed fields, relations only *) =
  match Codec.R.u8 r with
  | 0 -> Value.Array (r_values r), []
  | 1 -> Value.Vector (r_values r), []
  | 2 -> Value.Bytes (Bytes.of_string (Codec.R.str r)), []
  | 3 -> Value.Tuple (r_values r), []
  | 4 ->
    let mod_name = Codec.R.str r in
    let n = Codec.R.varint r in
    let exports =
      Array.init n (fun _ ->
          let name = Codec.R.str r in
          let v = r_value r in
          name, v)
    in
    Value.Module { Value.mod_name; exports }, []
  | 5 ->
    (* Legacy (pre-REL1) relation: whole row array inline, transient
       indexes identified only by field. Decodes to a tail-only paged
       record; [rebuild_relation_indexes] turns the field list into
       first-class [Index] objects and the header is rewritten as REL1
       on its next commit. *)
    let rel_name = Codec.R.str r in
    let rows = r_values r in
    let n = Codec.R.varint r in
    let fields = List.init n (fun _ -> Codec.R.varint r) in
    let nt = Codec.R.varint r in
    let triggers = List.init nt (fun _ -> r_value r) in
    ( Value.Relation
        {
          Value.rel_name;
          rel_page_size = !Relcore.default_page_size;
          rel_pages = [||];
          rel_tail = rows;
          rel_tail_len = Array.length rows;
          rel_count = Array.length rows;
          rel_indexes = [];
          rel_stats = None;
          rel_triggers = triggers;
          rel_rows_cache = None;
        },
      fields )
  | 6 ->
    let fo_name = Codec.R.str r in
    let fo_ptml = Codec.R.str r in
    let nb = Codec.R.varint r in
    let fo_bindings =
      List.init nb (fun _ ->
          let id = r_ident r in
          let v = r_value r in
          id, v)
    in
    let na = Codec.R.varint r in
    let fo_attrs =
      List.init na (fun _ ->
          let name = Codec.R.str r in
          let value = Codec.R.svarint r in
          name, value)
    in
    let tml =
      try Tml_store.Ptml.decode_value fo_ptml with
      | Tml_store.Ptml.Decode_error msg -> fail "function %s: corrupt PTML: %s" fo_name msg
    in
    ( Value.Func
        {
          Value.fo_name;
          fo_tml = tml;
          fo_ptml;
          fo_bindings;
          fo_tree_impl = None;
          fo_mach_impl = None;
          fo_code = None;
          fo_attrs;
        },
      [] )
  | 7 ->
    let magic = Codec.R.raw r 4 in
    if magic <> "REL1" then fail "bad relation magic %S" magic;
    let rel_name = Codec.R.str r in
    let rel_page_size = Codec.R.varint r in
    let rel_count = Codec.R.varint r in
    let npages = Codec.R.varint r in
    let rel_pages = Array.init npages (fun _ -> Oid.of_int (Codec.R.varint r)) in
    let tail_len = Codec.R.varint r in
    let rel_tail = Array.init tail_len (fun _ -> r_value r) in
    let ni = Codec.R.varint r in
    let rel_indexes =
      List.init ni (fun _ ->
          let field = Codec.R.varint r in
          let oid = Oid.of_int (Codec.R.varint r) in
          field, oid)
    in
    let rel_stats =
      match Codec.R.u8 r with
      | 0 -> None
      | 1 -> Some (Oid.of_int (Codec.R.varint r))
      | t -> fail "bad stats presence tag %d" t
    in
    let nt = Codec.R.varint r in
    let rel_triggers = List.init nt (fun _ -> r_value r) in
    ( Value.Relation
        {
          Value.rel_name;
          rel_page_size;
          rel_pages;
          rel_tail;
          rel_tail_len = tail_len;
          rel_count;
          rel_indexes;
          rel_stats;
          rel_triggers;
          rel_rows_cache = None;
        },
      [] )
  | 8 ->
    let magic = Codec.R.raw r 4 in
    if magic <> "IDX1" then fail "bad index magic %S" magic;
    let ix_field = Codec.R.varint r in
    let nkeys = Codec.R.varint r in
    let ix_tbl = Hashtbl.create (max 16 nkeys) in
    for _ = 1 to nkeys do
      let key =
        match Value.to_literal (r_value r) with
        | Some l -> l
        | None -> fail "non-literal index key in store object"
      in
      let np = Codec.R.varint r in
      let positions = List.init np (fun _ -> Codec.R.varint r) in
      Hashtbl.replace ix_tbl key positions
    done;
    Value.Index { Value.ix_field; ix_tbl }, []
  | 9 ->
    let magic = Codec.R.raw r 4 in
    if magic <> "STA1" then fail "bad stats magic %S" magic;
    let st_count = Codec.R.varint r in
    let st_arity = Codec.R.svarint r in
    let nd = Codec.R.varint r in
    let st_distinct =
      List.init nd (fun _ ->
          let field = Codec.R.varint r in
          let d = Codec.R.varint r in
          field, d)
    in
    Value.Stats { Value.st_count; st_arity; st_distinct }, []
  | t -> fail "bad object tag %d" t

let encode_obj obj =
  let w = Codec.W.create ~initial:256 () in
  w_obj w obj;
  Codec.W.contents w

let decode_obj s =
  let r = Codec.R.of_string s in
  try
    let obj, fields = r_obj r in
    if not (Codec.R.at_end r) then fail "trailing bytes after object";
    obj, fields
  with
  | Codec.R.Truncated -> fail "truncated object"
  | Codec.R.Malformed msg -> fail "malformed object: %s" msg

(* Rebuild the hash indexes of a legacy (pre-REL1) relation already
   installed in [heap]: for each persisted field, build the hash table
   by scanning the rows (dereferencing row tuples, possibly faulting
   them in) and allocate it as a first-class [Index] object. REL1
   relations never come through here — their indexes are store objects
   that fault on demand. *)
let rebuild_relation_indexes heap oid fields =
  let key_of v =
    match Value.to_literal v with
    | Some l -> l
    | None -> fail "non-literal index key in store object"
  in
  match Value.Heap.get heap oid with
  | Value.Relation rel ->
    let ixs =
      List.map
        (fun field ->
          let idx = Hashtbl.create (max 16 rel.Value.rel_count) in
          Relcore.iteri heap rel (fun pos row ->
              match row with
              | Value.Oidv roid -> (
                match Value.Heap.get_opt heap roid with
                | Some (Value.Tuple slots) when field < Array.length slots ->
                  let key = key_of slots.(field) in
                  let old = Option.value ~default:[] (Hashtbl.find_opt idx key) in
                  Hashtbl.replace idx key (pos :: old)
                | _ -> fail "relation row %d is not a valid tuple" pos)
              | _ -> fail "relation row %d is not a reference" pos);
          let ix_oid = Value.Heap.alloc heap (Value.Index { Value.ix_field = field; ix_tbl = idx }) in
          field, ix_oid)
        (List.sort compare fields)
    in
    rel.Value.rel_indexes <- ixs @ rel.Value.rel_indexes
  | _ -> fail "%s is not a relation" (Oid.to_string oid)
