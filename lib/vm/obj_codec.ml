open Tml_core
module Codec = Tml_store.Codec

exception Codec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codec_error s)) fmt

let w_value w (v : Value.t) =
  match v with
  | Value.Unit -> Codec.W.u8 w 0
  | Value.Bool false -> Codec.W.u8 w 1
  | Value.Bool true -> Codec.W.u8 w 2
  | Value.Int i ->
    Codec.W.u8 w 3;
    Codec.W.svarint w i
  | Value.Char c ->
    Codec.W.u8 w 4;
    Codec.W.u8 w (Char.code c)
  | Value.Real r ->
    Codec.W.u8 w 5;
    Codec.W.float64 w r
  | Value.Str s ->
    Codec.W.u8 w 6;
    Codec.W.str w s
  | Value.Oidv o ->
    Codec.W.u8 w 7;
    Codec.W.varint w (Oid.to_int o)
  | Value.Primv name ->
    Codec.W.u8 w 8;
    Codec.W.str w name
  | Value.Closure _ | Value.Mclosure _ | Value.Mblock _ | Value.Halt _ ->
    fail "cannot persist a live %s (functions must be store objects)" (Value.type_name v)

let r_value r : Value.t =
  match Codec.R.u8 r with
  | 0 -> Value.Unit
  | 1 -> Value.Bool false
  | 2 -> Value.Bool true
  | 3 -> Value.Int (Codec.R.svarint r)
  | 4 -> Value.Char (Char.chr (Codec.R.u8 r land 0xff))
  | 5 -> Value.Real (Codec.R.float64 r)
  | 6 -> Value.Str (Codec.R.str r)
  | 7 -> Value.Oidv (Oid.of_int (Codec.R.varint r))
  | 8 -> Value.Primv (Codec.R.str r)
  | t -> fail "bad value tag %d" t

let w_values w vs =
  Codec.W.varint w (Array.length vs);
  Array.iter (w_value w) vs

let r_values r =
  let n = Codec.R.varint r in
  Array.init n (fun _ -> r_value r)

let w_ident w (id : Ident.t) =
  Codec.W.str w id.Ident.name;
  Codec.W.varint w id.Ident.stamp;
  Codec.W.u8 w (if Ident.is_cont id then 1 else 0)

let r_ident r =
  let name = Codec.R.str r in
  let stamp = Codec.R.varint r in
  let sort = if Codec.R.u8 r = 1 then Ident.Cont else Ident.Value in
  Ident.make ~name ~stamp ~sort

let w_obj w (obj : Value.obj) =
  match obj with
  | Value.Array vs ->
    Codec.W.u8 w 0;
    w_values w vs
  | Value.Vector vs ->
    Codec.W.u8 w 1;
    w_values w vs
  | Value.Bytes b ->
    Codec.W.u8 w 2;
    Codec.W.str w (Bytes.to_string b)
  | Value.Tuple vs ->
    Codec.W.u8 w 3;
    w_values w vs
  | Value.Module m ->
    Codec.W.u8 w 4;
    Codec.W.str w m.Value.mod_name;
    Codec.W.varint w (Array.length m.Value.exports);
    Array.iter
      (fun (name, v) ->
        Codec.W.str w name;
        w_value w v)
      m.Value.exports
  | Value.Relation rel ->
    Codec.W.u8 w 5;
    Codec.W.str w rel.Value.rel_name;
    w_values w rel.Value.rows;
    (* persist which fields are indexed; the hash tables are rebuilt *)
    Codec.W.varint w (List.length rel.Value.indexes);
    List.iter (fun (field, _) -> Codec.W.varint w field) rel.Value.indexes;
    Codec.W.varint w (List.length rel.Value.triggers);
    List.iter (w_value w) rel.Value.triggers
  | Value.Func fo ->
    Codec.W.u8 w 6;
    Codec.W.str w fo.Value.fo_name;
    Codec.W.str w fo.Value.fo_ptml;
    Codec.W.varint w (List.length fo.Value.fo_bindings);
    List.iter
      (fun (id, v) ->
        w_ident w id;
        w_value w v)
      fo.Value.fo_bindings;
    Codec.W.varint w (List.length fo.Value.fo_attrs);
    List.iter
      (fun (name, value) ->
        Codec.W.str w name;
        Codec.W.svarint w value)
      fo.Value.fo_attrs

let r_obj r : Value.obj * int list (* indexed fields, relations only *) =
  match Codec.R.u8 r with
  | 0 -> Value.Array (r_values r), []
  | 1 -> Value.Vector (r_values r), []
  | 2 -> Value.Bytes (Bytes.of_string (Codec.R.str r)), []
  | 3 -> Value.Tuple (r_values r), []
  | 4 ->
    let mod_name = Codec.R.str r in
    let n = Codec.R.varint r in
    let exports =
      Array.init n (fun _ ->
          let name = Codec.R.str r in
          let v = r_value r in
          name, v)
    in
    Value.Module { Value.mod_name; exports }, []
  | 5 ->
    let rel_name = Codec.R.str r in
    let rows = r_values r in
    let n = Codec.R.varint r in
    let fields = List.init n (fun _ -> Codec.R.varint r) in
    let nt = Codec.R.varint r in
    let triggers = List.init nt (fun _ -> r_value r) in
    Value.Relation { Value.rel_name; rows; indexes = []; triggers }, fields
  | 6 ->
    let fo_name = Codec.R.str r in
    let fo_ptml = Codec.R.str r in
    let nb = Codec.R.varint r in
    let fo_bindings =
      List.init nb (fun _ ->
          let id = r_ident r in
          let v = r_value r in
          id, v)
    in
    let na = Codec.R.varint r in
    let fo_attrs =
      List.init na (fun _ ->
          let name = Codec.R.str r in
          let value = Codec.R.svarint r in
          name, value)
    in
    let tml =
      try Tml_store.Ptml.decode_value fo_ptml with
      | Tml_store.Ptml.Decode_error msg -> fail "function %s: corrupt PTML: %s" fo_name msg
    in
    ( Value.Func
        {
          Value.fo_name;
          fo_tml = tml;
          fo_ptml;
          fo_bindings;
          fo_tree_impl = None;
          fo_mach_impl = None;
          fo_code = None;
          fo_attrs;
        },
      [] )
  | t -> fail "bad object tag %d" t

let encode_obj obj =
  let w = Codec.W.create ~initial:256 () in
  w_obj w obj;
  Codec.W.contents w

let decode_obj s =
  let r = Codec.R.of_string s in
  try
    let obj, fields = r_obj r in
    if not (Codec.R.at_end r) then fail "trailing bytes after object";
    obj, fields
  with
  | Codec.R.Truncated -> fail "truncated object"
  | Codec.R.Malformed msg -> fail "malformed object: %s" msg

(* Rebuild the hash indexes of a relation already installed in [heap]
   (dereferences the row tuples, possibly faulting them in). *)
let rebuild_relation_indexes heap oid fields =
  let key_of v =
    match Value.to_literal v with
    | Some l -> l
    | None -> fail "non-literal index key in store object"
  in
  match Value.Heap.get heap oid with
  | Value.Relation rel ->
    List.iter
      (fun field ->
        let idx = Hashtbl.create (max 16 (Array.length rel.Value.rows)) in
        Array.iteri
          (fun pos row ->
            match row with
            | Value.Oidv roid -> (
              match Value.Heap.get_opt heap roid with
              | Some (Value.Tuple slots) when field < Array.length slots ->
                let key = key_of slots.(field) in
                let old = Option.value ~default:[] (Hashtbl.find_opt idx key) in
                Hashtbl.replace idx key (pos :: old)
              | _ -> fail "relation row %d is not a valid tuple" pos)
            | _ -> fail "relation row %d is not a reference" pos)
          rel.Value.rows;
        rel.Value.indexes <- (field, idx) :: rel.Value.indexes)
      fields
  | _ -> fail "%s is not a relation" (Oid.to_string oid)
