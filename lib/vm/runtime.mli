(** Execution context and runtime behaviour of primitive procedures.

    The descriptor a primitive registers in {!Tml_core.Prim} covers the
    optimizer's needs (meta-evaluation, cost, attributes); its {e executable}
    behaviour is registered here, keyed by the same name, and shared by the
    tree-walking evaluator and the abstract machine.  Libraries adding
    primitives (the query substrate) register implementations through
    {!register_impl} — this is the extensibility story of section 2.3.

    An implementation receives the value arguments and the continuation
    arguments separately (both as runtime values) and answers which
    continuation to invoke with which results — "each primitive calls
    exactly one of its continuation arguments tail-recursively, passing the
    result of its computation". *)

type ctx = {
  heap : Value.Heap.heap;
  mutable handlers : Value.t list;  (** the [pushHandler] / [raise] stack *)
  mutable steps : int;  (** abstract-machine instructions executed *)
  mutable fuel : int;   (** remaining instruction budget; [max_int] = unlimited *)
  out : Buffer.t;       (** program output (captured for tests and demos) *)
  ccalls : (string, ccall_impl) Hashtbl.t;
  mutable subcall : Value.t -> Value.t list -> (Value.t, Value.t) result;
      (** re-entrant procedure call provided by the running engine, used by
          higher-order primitives (e.g. [select] applying its predicate);
          [Error] carries an exception value raised by the callee *)
  mutable durable_commit : (unit -> unit) option;
      (** installed when the heap is backed by a durable store ([Pstore]):
          commits the current heap state.  The reflective optimizer calls it
          after rewriting a function so optimized code and its derived
          attributes persist with the system state (section 4.1). *)
}

and ccall_impl = ctx -> Value.t list -> (Value.t, Value.t) result

(** [create ?fuel heap] makes a fresh context with the default ccall table
    installed. *)
val create : ?fuel:int -> Value.Heap.heap -> ctx

(** Raised by engines when [fuel] runs out. *)
exception Fuel_exhausted

(** Raised on conditions a correct front end never produces (arity and type
    violations, dangling references, out-of-bounds access). *)
exception Fault of string

val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [charge ctx cost] accounts [cost] abstract instructions and checks the
    fuel budget.  @raise Fuel_exhausted *)
val charge : ctx -> int -> unit

type prim_result =
  | Invoke of Value.t * Value.t list
      (** tail-invoke this (continuation) value with these results *)

type impl = ctx -> Value.t list -> Value.t list -> prim_result

val register_impl : ?override:bool -> string -> impl -> unit
val find_impl : string -> impl option

(** [find_impl_exn name] @raise Fault for unimplemented primitives. *)
val find_impl_exn : string -> impl

(** [install ()] registers the implementations of all standard primitives
    ({!Tml_core.Primitives}) and installs the core registry too.
    Idempotent. *)
val install : unit -> unit

(** [is_standard_impl name] is true when the implementation currently
    registered for [name] is the exact closure [install] registered —
    i.e. nobody overrode it since.  Clients that specialize a
    primitive's behaviour (the compiled tier's inline fast paths) check
    this at compile time and fall back to the generic dispatch
    otherwise. *)
val is_standard_impl : string -> bool

(** [register_ccall ctx name f] adds a host function reachable through the
    [ccall] primitive. *)
val register_ccall : ctx -> string -> ccall_impl -> unit

(** {1 Value accessors} (raise {!Fault} on type mismatches) *)

val as_int : what:string -> Value.t -> int
val as_real : what:string -> Value.t -> float
val as_bool : what:string -> Value.t -> bool
val as_char : what:string -> Value.t -> char
val as_str : what:string -> Value.t -> string
val as_oid : what:string -> Value.t -> Tml_core.Oid.t

(** [as_array ctx ~what v] dereferences an OID to a mutable array. *)
val as_array : ctx -> what:string -> Value.t -> Value.t array

(** [as_indexable ctx ~what v] dereferences to the slots of an array, vector
    or tuple (read-only view). *)
val as_indexable : ctx -> what:string -> Value.t -> Value.t array

val as_bytes : ctx -> what:string -> Value.t -> bytes
