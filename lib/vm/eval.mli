(** The tree-walking CPS evaluator — the reference semantics of TML.

    TML is a call-by-value λ-calculus with store semantics (section 2.1);
    this module implements it directly over terms: applications evaluate
    their function and argument values (values never contain redexes, so
    "evaluation" of arguments is environment lookup and closure building),
    then transfer control.  Every transfer is a tail call, so the evaluator
    runs in constant OCaml stack space; the [Y] primitive ties recursive
    environment knots by patching closure environments.

    The abstract machine ({!Machine}) must agree with this evaluator on all
    programs; the property-based test suite checks exactly that. *)

type outcome =
  | Done of Value.t     (** the normal halt continuation received this value *)
  | Raised of Value.t   (** the error halt continuation received this value *)
  | No_fuel             (** the instruction budget ran out *)
  | Fault of string     (** a runtime fault (ill-typed or ill-formed program) *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_equal : outcome -> outcome -> bool

(** [run_app ctx ~env app] evaluates [app] in [env].  The program finishes
    by invoking one of the [Value.Halt] sentinels (normally passed to the
    entry procedure as its continuations). *)
val run_app : Runtime.ctx -> env:Value.t Tml_core.Ident.Map.t -> Tml_core.Term.app -> outcome

(** [apply ctx f args] applies a procedure or continuation value. *)
val apply : Runtime.ctx -> Value.t -> Value.t list -> outcome

(** [run_proc ctx proc args] applies a [proc] value (a closure, an [Oidv] of
    a function object, ...) to [args] plus the two halt continuations: the
    standard way to run a complete program. *)
val run_proc : Runtime.ctx -> Value.t -> Value.t list -> outcome

(** [eval_value ctx ~env v] evaluates a TML value to a runtime value
    (literals inject, variables look up, abstractions close over [env]). *)
val eval_value : Runtime.ctx -> env:Value.t Tml_core.Ident.Map.t -> Tml_core.Term.value -> Value.t

(** [func_impl ctx fo] returns (and caches) the linked tree closure of a
    function object: its TML abstraction closed over its R-value
    bindings. *)
val func_impl : Runtime.ctx -> Value.func_obj -> Value.t
