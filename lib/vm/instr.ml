open Tml_core
module Codec = Tml_store.Codec

type operand =
  | Reg of int
  | Env of int
  | Const of Literal.t
  | Primconst of string

type cont_spec =
  | Cblock of int array * code
  | Cval of operand

and code =
  | Tailcall of operand * operand list
  | Primop of string * operand list * cont_spec list
  | Close of closdef list * code
  | Fix of closdef list * code

and closdef = {
  dst : int;
  fn : int;
  captures : operand array;
}

type func = {
  fn_name : string;
  arity : int;
  nregs : int;
  body : code;
}

type unit_code = {
  funcs : func array;
  entry : int;
}

let rec code_instructions = function
  | Tailcall _ -> 1
  | Primop (_, _, conts) ->
    1
    + List.fold_left
        (fun acc c ->
          acc
          +
          match c with
          | Cblock (_, code) -> code_instructions code
          | Cval _ -> 0)
        0 conts
  | Close (defs, rest) | Fix (defs, rest) -> List.length defs + code_instructions rest

let unit_instructions u =
  Array.fold_left (fun acc f -> acc + code_instructions f.body) 0 u.funcs

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let w_operand w = function
  | Reg r ->
    Codec.W.u8 w 0;
    Codec.W.varint w r
  | Env e ->
    Codec.W.u8 w 1;
    Codec.W.varint w e
  | Const (Literal.Unit) -> Codec.W.u8 w 2
  | Const (Literal.Bool false) -> Codec.W.u8 w 3
  | Const (Literal.Bool true) -> Codec.W.u8 w 4
  | Const (Literal.Int i) ->
    Codec.W.u8 w 5;
    Codec.W.svarint w i
  | Const (Literal.Char c) ->
    Codec.W.u8 w 6;
    Codec.W.u8 w (Char.code c)
  | Const (Literal.Real r) ->
    Codec.W.u8 w 7;
    Codec.W.float64 w r
  | Const (Literal.Str s) ->
    Codec.W.u8 w 8;
    Codec.W.str w s
  | Const (Literal.Oid o) ->
    Codec.W.u8 w 9;
    Codec.W.varint w (Oid.to_int o)
  | Primconst name ->
    Codec.W.u8 w 10;
    Codec.W.str w name

let r_operand r =
  match Codec.R.u8 r with
  | 0 -> Reg (Codec.R.varint r)
  | 1 -> Env (Codec.R.varint r)
  | 2 -> Const Literal.Unit
  | 3 -> Const (Literal.Bool false)
  | 4 -> Const (Literal.Bool true)
  | 5 -> Const (Literal.Int (Codec.R.svarint r))
  | 6 -> Const (Literal.Char (Char.chr (Codec.R.u8 r land 0xff)))
  | 7 -> Const (Literal.Real (Codec.R.float64 r))
  | 8 -> Const (Literal.Str (Codec.R.str r))
  | 9 -> Const (Literal.Oid (Oid.of_int (Codec.R.varint r)))
  | 10 -> Primconst (Codec.R.str r)
  | t -> failwith (Printf.sprintf "Instr.decode: bad operand tag %d" t)

let w_list w f xs =
  Codec.W.varint w (List.length xs);
  List.iter (f w) xs

let r_list r f =
  let n = Codec.R.varint r in
  List.init n (fun _ -> f r)

let rec w_code w = function
  | Tailcall (f, args) ->
    Codec.W.u8 w 0;
    w_operand w f;
    w_list w w_operand args
  | Primop (name, vals, conts) ->
    Codec.W.u8 w 1;
    Codec.W.str w name;
    w_list w w_operand vals;
    w_list w w_cont conts
  | Close (defs, rest) ->
    Codec.W.u8 w 2;
    w_list w w_closdef defs;
    w_code w rest
  | Fix (defs, rest) ->
    Codec.W.u8 w 3;
    w_list w w_closdef defs;
    w_code w rest

and w_cont w = function
  | Cblock (regs, code) ->
    Codec.W.u8 w 0;
    Codec.W.varint w (Array.length regs);
    Array.iter (Codec.W.varint w) regs;
    w_code w code
  | Cval op ->
    Codec.W.u8 w 1;
    w_operand w op

and w_closdef w d =
  Codec.W.varint w d.dst;
  Codec.W.varint w d.fn;
  Codec.W.varint w (Array.length d.captures);
  Array.iter (w_operand w) d.captures

let rec r_code r =
  match Codec.R.u8 r with
  | 0 ->
    let f = r_operand r in
    let args = r_list r r_operand in
    Tailcall (f, args)
  | 1 ->
    let name = Codec.R.str r in
    let vals = r_list r r_operand in
    let conts = r_list r r_cont in
    Primop (name, vals, conts)
  | 2 ->
    let defs = r_list r r_closdef in
    let rest = r_code r in
    Close (defs, rest)
  | 3 ->
    let defs = r_list r r_closdef in
    let rest = r_code r in
    Fix (defs, rest)
  | t -> failwith (Printf.sprintf "Instr.decode: bad code tag %d" t)

and r_cont r =
  match Codec.R.u8 r with
  | 0 ->
    let n = Codec.R.varint r in
    let regs = Array.init n (fun _ -> Codec.R.varint r) in
    let code = r_code r in
    Cblock (regs, code)
  | 1 -> Cval (r_operand r)
  | t -> failwith (Printf.sprintf "Instr.decode: bad cont tag %d" t)

and r_closdef r =
  let dst = Codec.R.varint r in
  let fn = Codec.R.varint r in
  let n = Codec.R.varint r in
  let captures = Array.init n (fun _ -> r_operand r) in
  { dst; fn; captures }

let code_magic = "TMC1"

let encode_unit u =
  let w = Codec.W.create ~initial:1024 () in
  Codec.W.raw w code_magic;
  Codec.W.varint w (Array.length u.funcs);
  Array.iter
    (fun f ->
      Codec.W.str w f.fn_name;
      Codec.W.varint w f.arity;
      Codec.W.varint w f.nregs;
      w_code w f.body)
    u.funcs;
  Codec.W.varint w u.entry;
  Codec.W.contents w

let decode_unit s =
  let r = Codec.R.of_string s in
  let m = Codec.R.raw r (String.length code_magic) in
  if m <> code_magic then failwith "Instr.decode_unit: bad magic";
  let n = Codec.R.varint r in
  let funcs =
    Array.init n (fun _ ->
        let fn_name = Codec.R.str r in
        let arity = Codec.R.varint r in
        let nregs = Codec.R.varint r in
        let body = r_code r in
        { fn_name; arity; nregs; body })
  in
  let entry = Codec.R.varint r in
  { funcs; entry }

(* ------------------------------------------------------------------ *)
(* Disassembler                                                         *)
(* ------------------------------------------------------------------ *)

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Env e -> Format.fprintf ppf "e%d" e
  | Const l -> Literal.pp ppf l
  | Primconst name -> Format.fprintf ppf "#%s" name

let pp_operands ppf ops =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_operand ppf ops

let rec pp_code ppf = function
  | Tailcall (f, args) -> Format.fprintf ppf "@[tailcall %a(%a)@]" pp_operand f pp_operands args
  | Primop (name, vals, conts) ->
    Format.fprintf ppf "@[<v>prim %s(%a)" name pp_operands vals;
    List.iteri
      (fun i c ->
        match c with
        | Cval op -> Format.fprintf ppf "@,  k%d -> %a" i pp_operand op
        | Cblock (regs, code) ->
          Format.fprintf ppf "@,  @[<v 2>k%d(%s):@,%a@]" i
            (String.concat "," (Array.to_list (Array.map (Printf.sprintf "r%d") regs)))
            pp_code code)
      conts;
    Format.fprintf ppf "@]"
  | (Close (defs, rest) | Fix (defs, rest)) as instr ->
    let kw =
      match instr with
      | Fix _ -> "fixclosure"
      | _ -> "closure"
    in
    List.iter
      (fun d ->
        Format.fprintf ppf "@[r%d := %s fn%d [%a]@]@," d.dst kw d.fn pp_operands
          (Array.to_list d.captures))
      defs;
    pp_code ppf rest

let pp_unit ppf u =
  Array.iteri
    (fun i f ->
      Format.fprintf ppf "@[<v 2>fn%d %s/%d (%d regs):@,%a@]@,@," i f.fn_name f.arity f.nregs
        pp_code f.body)
    u.funcs;
  Format.fprintf ppf "entry: fn%d@." u.entry
