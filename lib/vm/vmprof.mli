(** Sampling step profiler for the abstract machine.

    Wall-clock profilers need signals and symbolization; the VM already
    has a better unit — the abstract instruction counter every engine
    charges identically.  This profiler attributes the {e step deltas}
    between successive function applications to the function that was
    running, split by execution tier, so a dump shows exactly where a
    workload's [vm.run_steps] went.  The disabled fast path is one ref
    read per application.

    Attribution is flat (self-cost per function, not a call tree): the
    machine is CPS-driven, so there is no stack to walk.  The collapsed
    output still loads in flamegraph tools as a two-level
    [tier;function] flame.

    Concurrency: samples are recorded under whatever serializes VM
    execution (the server's eval lock; single-threaded CLIs), so the
    recorder itself takes no lock on the hot path. *)

val enabled : bool ref
(** master switch; off by default *)

val note_apply : Runtime.ctx -> tier:string -> name:string -> oid:int -> unit
(** called by the machine at each stored-function application: closes
    the attribution window of the previously running function (same
    [ctx] only) and opens one for this function *)

val flush : Runtime.ctx -> unit
(** attribute any trailing steps after a run completes *)

val reset : unit -> unit
(** drop all samples and the open attribution window *)

type sample = {
  vp_key : string;  (** ["name#oid"] *)
  vp_tier : string;  (** ["machine"] or ["tiered"] *)
  vp_steps : int;  (** abstract instructions attributed *)
  vp_calls : int;
}

val samples : unit -> sample list
(** descending by steps *)

val total_steps : unit -> int

val collapsed : unit -> string
(** collapsed-stack text, one [tier;name#oid count] line per sample,
    descending by steps — pipe into [flamegraph.pl] *)

val pp : Format.formatter -> unit -> unit
(** human-readable table with percentages *)
