(** Profile-guided promotion of hot stored functions to the compiled
    closure tier ({!Jit}), with deoptimization back to the bytecode
    machine on any staleness signal.

    The machine consults {!dispatch} on every [Oidv] application; the
    promotion policy (call counts crossing {!call_threshold} while the
    process shows at least {!min_run_steps} of interpreter work in the
    current run or the [vm.run_steps] histogram, or a warm speccache)
    and the deoptimization protocol (speccache invalidations, heap
    update hooks, per-entry heap/code identity re-validation) are
    described in docs/TIERS.md. *)

(** master switch for {e policy} promotion; [force_promote] and already
    promoted entries work regardless *)
val enabled : bool ref

(** calls to one function before promotion is considered (default 32) *)
val call_threshold : int ref

(** interpreter work (abstract instructions) required before anything is
    promoted (default 10_000) *)
val min_run_steps : int ref

(** [dispatch ctx oid fo] — the machine's call-into-tier hook: [Some
    entry] runs [oid] on the compiled tier, [None] stays on the machine.
    Counts calls, promotes per policy, re-validates promoted entries and
    deoptimizes stale ones. *)
val dispatch :
  Runtime.ctx ->
  Tml_core.Oid.t ->
  Value.func_obj ->
  (Runtime.ctx -> Value.t list -> Eval.outcome) option

(** [force_promote ctx oid] compiles and installs [oid] immediately,
    bypassing the policy; [false] when [oid] is not a compilable stored
    function (η-reduced to a primitive, unresolved free identifiers,
    not a [Func]). *)
val force_promote : Runtime.ctx -> Tml_core.Oid.t -> bool

(** [repromote ctx oid] rebuilds the compiled entry from [oid]'s current
    code if it was promoted before (or is hot); called by
    [Reflect.optimize_inplace] after installing re-optimized code so hot
    functions do not re-heat from zero. *)
val repromote : Runtime.ctx -> Tml_core.Oid.t -> unit

type stats = {
  mutable promotions : int;
  mutable deopts : int;
  mutable runs : int;  (** entries into compiled code from the machine *)
  mutable rejections : int;  (** promotion attempts that failed to compile *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** number of currently promoted functions *)
val promoted_count : unit -> int

(** drop all promotions, call counts and heap watches (counters are
    kept); used by fresh differential-oracle contexts *)
val clear : unit -> unit

(** register the ["tier"] source in the {!Tml_obs.Metrics} registry *)
val register_metrics : unit -> unit
