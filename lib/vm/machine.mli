(** The abstract machine interpreter.

    Executes the code produced by {!Compile}.  Control transfer is always a
    tail call, so the interpreter is a flat fetch-execute loop; inlined
    continuation blocks continue within the current frame.  The instruction
    and cost accounting matches the idealized-abstract-machine cost model of
    the primitive descriptors (section 2.3, item 3): this counter is the
    measure reported by the Stanford-suite experiments E1/E2. *)

(** [apply ctx f args] applies a machine closure, block, function object,
    primitive value or halt sentinel. *)
val apply : Runtime.ctx -> Value.t -> Value.t list -> Eval.outcome

(** [run_proc ctx proc args] applies [proc] to [args] plus the two halt
    continuations. *)
val run_proc : Runtime.ctx -> Value.t -> Value.t list -> Eval.outcome

(** [run_abs ctx abs args] compiles a closed [proc] abstraction and runs
    it. *)
val run_abs : Runtime.ctx -> Tml_core.Term.abs -> Value.t list -> Eval.outcome

(** [func_impl ctx fo] is {!Compile.compile_func}. *)
val func_impl : Runtime.ctx -> Value.func_obj -> Value.t
