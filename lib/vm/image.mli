(** Whole-store image persistence.

    Serializes every live store object — arrays, byte arrays, tuples,
    modules, relations (indexes are rebuilt on load) and function objects.
    A function object persists exactly what the paper's architecture needs
    at runtime: its name, its PTML tree, its R-value bindings and its
    derived optimizer attributes; executable code is regenerated on demand
    by the code generator (figure 3), so images are
    machine-representation-independent.

    Values with no persistent form (live closures of either engine,
    continuation blocks, halt sentinels) are rejected: in this system, as in
    Tycoon, durable functions are store objects, not host-language
    closures. *)

exception Image_error of string

(** [save heap] serializes the heap. @raise Image_error *)
val save : Value.Heap.heap -> string

(** [load bytes] rebuilds a heap with identical OIDs. @raise Image_error *)
val load : string -> Value.Heap.heap

(** [save_file heap path] / [load_file path] — file-based variants. *)
val save_file : Value.Heap.heap -> string -> unit

val load_file : string -> Value.Heap.heap
