(** The persistent heap: a [Value.Heap.heap] backed by the durable log
    store ([Tml_store.Log_store]), with on-demand object faulting.

    Opening a store materializes {e nothing}: the heap's address space is
    reserved and every object is faulted in — decoded from its log
    record — on first dereference.  Accesses are tracked through the
    heap hooks:

    - an access to a {e mutable-kind} object (arrays, byte arrays,
      relations, functions) marks it dirty, pinning it in memory until
      the next {!commit} writes it back;
    - clean {e immutable-kind} objects (vectors, tuples, modules) sit in
      an LRU of configurable capacity and may be silently evicted — the
      next dereference faults them back in;
    - objects allocated since the last commit are new and always
      committed.

    {!commit} encodes every dirty and new object, stages the records and
    seals them with one write-ahead commit record — after a crash the
    store recovers exactly the last sealed state.  All counters (faults,
    hits, misses, evictions, commits, recovery truncations) are exposed
    via {!stats}. *)

exception Store_error of string

type t

(** {1 Lifecycle} *)

val create : ?cache_capacity:int -> ?fsync:bool -> string -> t
(** fresh store file with a fresh, empty heap.  [cache_capacity] bounds
    the number of clean cached objects ([<= 0], the default, means
    unbounded); [fsync] as in {!Tml_store.Log_store.create}. *)

val attach : ?cache_capacity:int -> ?fsync:bool -> string -> Value.Heap.heap -> t
(** fresh store file adopting an existing in-memory heap; every object
    in it is treated as new and written by the first {!commit} *)

val open_ : ?cache_capacity:int -> ?fsync:bool -> string -> t
(** recover an existing store (torn tail truncated, directory rebuilt)
    and hand back a lazy heap: no object is decoded until dereferenced.
    @raise Tml_store.Log_store.Store_error as {!Tml_store.Log_store.open_} *)

val open_snapshot :
  ?cache_capacity:int -> Tml_store.Log_store.t -> alloc_base:int -> t
(** [open_snapshot log ~alloc_base] — a {e snapshot-backed} store over an
    already-open (possibly shared) log: it pins a
    {!Tml_store.Log_store.snapshot} at the current committed epoch and
    faults every object from that epoch, so concurrent commits by other
    sessions are invisible.  New allocations start at [alloc_base] — the
    server hands each session a disjoint OID stripe so concurrently
    staged objects never collide.  {!commit} is refused on such a store;
    use {!collect} / {!mark_committed} with a group committer.
    @raise Store_error if [alloc_base] overlaps already-sealed OIDs *)

val close : t -> unit
(** detach the hooks and close the file (a snapshot-backed store releases
    its pin but leaves the shared log open).  The heap survives with
    whatever was materialized, as a plain in-memory heap. *)

(** {1 Transactions} *)

val commit : ?root:Tml_core.Oid.t -> t -> int
(** write back every dirty and new object and seal the transaction;
    returns the number of objects written (0 when there is nothing to
    do).  [root] updates the store's sticky root OID — the entry point
    {!root} reports after reopening.
    @raise Store_error if an object holds a live closure *)

val compact : t -> unit
(** commit, then rewrite the file keeping only live objects (see
    {!Tml_store.Log_store.compact}) *)

(** {1 Group-commit staging (snapshot-backed stores)} *)

val collect : t -> (int * string) list
(** encode every dirty and new object into an [(oid, payload)] batch
    without staging or sealing anything — the material a server session
    hands to the group committer.  Pre-existing objects whose encoding is
    byte-identical to the version visible at this session's snapshot were
    only read (mutable kinds are conservatively dirtied on access) and
    are dropped from the batch.
    @raise Store_error if an object holds a live closure *)

val mark_committed : t -> Tml_store.Log_store.snapshot -> unit
(** after the group committer sealed this session's last {!collect}:
    adopt [snapshot] (pinned at the sealing epoch) as the new read view,
    clear dirty tracking, advance the watermark, and evict read-only and
    clean cached copies so later dereferences re-fault against the new
    epoch *)

val snapshot : t -> Tml_store.Log_store.snapshot option
(** the pinned read view, when snapshot-backed *)

val epoch : t -> int
(** the epoch reads observe: the pinned snapshot's epoch, or the log's
    current committed sequence number *)

(** {1 Access} *)

val heap : t -> Value.Heap.heap
val root : t -> Tml_core.Oid.t option
val log : t -> Tml_store.Log_store.t

(** {1 Introspection} *)

val stats : t -> Tml_store.Store_stats.t
val path : t -> string

val dirty_count : t -> int
(** objects pinned for the next commit *)

val uncommitted_count : t -> int
(** dirty plus never-committed objects — what a commit (or {!collect})
    would consider writing; what [tmlsh] warns about on exit *)

val cached_clean_count : t -> int
(** clean objects currently cached (the LRU population) *)

val set_fsync : t -> bool -> unit
