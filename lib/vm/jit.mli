(** Closure-compiling execution tier ("template compilation").

    Translates a unit's bytecode into a tree of native OCaml closures
    operating on the same {!Value.t} representation as the abstract
    machine — same closures, same continuation blocks, same abstract
    instruction charges at the same points, so step counts and fuel
    behaviour are observably identical to {!Machine}.  Values flow
    freely between tiers; anything the compiled tier cannot handle
    escapes to the interpreter through {!escape_apply}.

    Promotion policy lives in {!Tierup}; this module is the mechanism.
    See docs/TIERS.md. *)

type cunit
(** a compiled unit, cached per physical {!Instr.unit_code} *)

(** [compile_unit u] returns the compiled form of [u], compiling at most
    once per physical unit (a bounded global cache). *)
val compile_unit : Instr.unit_code -> cunit

(** [apply_func cu ~fn ~env ctx args] applies function [fn] of the
    compiled unit under environment [env] — the compiled tier's
    equivalent of applying an [Mclosure], including its charge. *)
val apply_func :
  cunit -> fn:int -> env:Value.t array -> Runtime.ctx -> Value.t list -> Eval.outcome

(** [call_value cu ctx f args] is the compiled tier's full applicator,
    mirroring [Machine.apply] case by case (exposed for tests). *)
val call_value : cunit -> Runtime.ctx -> Value.t -> Value.t list -> Eval.outcome

(** Full applicator escape hatch into the interpreter; installed by
    {!Machine} at load time. *)
val escape_apply : (Runtime.ctx -> Value.t -> Value.t list -> Eval.outcome) ref

(** Consulted when compiled code applies an [Oidv]: returns the
    compiled entry for a promoted function, or [None] to dispatch
    through {!Compile.compile_func} as the machine would.  Installed by
    {!Tierup}. *)
val oid_entry :
  (Runtime.ctx ->
  Tml_core.Oid.t ->
  Value.func_obj ->
  (Runtime.ctx -> Value.t list -> Eval.outcome) option)
  ref

(** number of units compiled since process start (monotonic) *)
val compiled_units : unit -> int

(** drop the compiled-unit cache (units recompile on demand) *)
val clear : unit -> unit

(** Invalidate every per-site inline cache of resolved [Oidv] callees.
    {!Tierup} calls this on promotion, deoptimization and speccache
    invalidation so a cached compiled entry can never outlive the
    binding it was resolved from. *)
val invalidate_sites : unit -> unit
