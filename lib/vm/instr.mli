(** The Tycoon abstract machine code.

    TML is compiled to a register-based machine in which — true to CPS —
    every transfer of control is a tail call (the "generalized goto with
    parameter passing" of Steele, quoted in section 2.1).  Continuation
    abstractions appearing literally in continuation argument positions are
    compiled to {e inline blocks} of the enclosing function (no closure is
    allocated for them); all other abstractions become separate functions
    plus a closure construction.  The [Y] primitive compiles to [Fix], which
    allocates a mutually recursive group of closures.

    Frames are arrays of virtual registers, one per function invocation;
    inlined continuation blocks write into the frame of their function. *)

type operand =
  | Reg of int            (** a virtual register of the current frame *)
  | Env of int            (** a slot of the current closure's environment *)
  | Const of Tml_core.Literal.t
  | Primconst of string   (** a primitive used as a first-class value *)

(** Destination of a continuation argument of a primitive call. *)
type cont_spec =
  | Cblock of int array * code
      (** inline block: bind the results to these registers, continue *)
  | Cval of operand
      (** an already-constructed continuation value *)

and code =
  | Tailcall of operand * operand list
  | Primop of string * operand list * cont_spec list
      (** primitive call: value operands, then continuation specs *)
  | Close of closdef list * code
      (** allocate closures, then continue *)
  | Fix of closdef list * code
      (** like [Close], but the captures may refer to the destination
          registers of the group itself (mutual recursion); all closures are
          allocated before any capture is read *)

and closdef = {
  dst : int;             (** register receiving the closure *)
  fn : int;              (** index into the unit's function table *)
  captures : operand array;
}

type func = {
  fn_name : string;
  arity : int;       (** parameters arrive in registers 0 .. arity-1 *)
  nregs : int;       (** frame size *)
  body : code;
}

type unit_code = {
  funcs : func array;
  entry : int;  (** index of the entry function *)
}

(** {1 Measures and serialization} *)

(** [code_instructions c] counts instructions (for reporting). *)
val code_instructions : code -> int

val unit_instructions : unit_code -> int

(** [encode_unit u] serializes to bytes (the executable-code-size measure of
    experiment E3). *)
val encode_unit : unit_code -> string

(** [decode_unit s] inverts [encode_unit].
    @raise Failure on malformed input. *)
val decode_unit : string -> unit_code

(** [pp_unit] — a disassembler for debugging and the CLI. *)
val pp_unit : Format.formatter -> unit_code -> unit

val pp_code : Format.formatter -> code -> unit
