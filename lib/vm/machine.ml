open Tml_core

type st = {
  unit_code : Instr.unit_code;
  env : Value.t array;
  frame : Value.t array;
}

let operand st : Instr.operand -> Value.t = function
  | Instr.Reg r -> st.frame.(r)
  | Instr.Env e -> st.env.(e)
  | Instr.Const l -> Value.of_literal l
  | Instr.Primconst name -> Value.Primv name

let prim_cost name =
  match Prim.find name with
  | Some d -> d.Prim.base_cost
  | None -> 1

let rec exec ctx st (code : Instr.code) : Eval.outcome =
  match code with
  | Instr.Tailcall (f, args) ->
    let fv = operand st f in
    let argv = List.map (operand st) args in
    apply ctx fv argv
  | Instr.Primop (name, vals, conts) ->
    Runtime.charge ctx (prim_cost name);
    let values = List.map (operand st) vals in
    let cont_values =
      List.map
        (function
          | Instr.Cval op -> operand st op
          | Instr.Cblock (regs, code) ->
            Value.Mblock
              {
                Value.b_frame = st.frame;
                b_unit = st.unit_code;
                b_env = st.env;
                b_regs = regs;
                b_code = code;
              })
        conts
    in
    let impl = Runtime.find_impl_exn name in
    let (Runtime.Invoke (k, results)) = impl ctx values cont_values in
    apply ctx k results
  | Instr.Close (defs, rest) ->
    List.iter
      (fun { Instr.dst; fn; captures } ->
        Runtime.charge ctx (1 + Array.length captures);
        let env = Array.map (operand st) captures in
        st.frame.(dst) <- Value.Mclosure { Value.m_unit = st.unit_code; m_fn = fn; m_env = env })
      defs;
    exec ctx st rest
  | Instr.Fix (defs, rest) ->
    (* phase 1: allocate all closures with empty environments *)
    let envs =
      List.map
        (fun { Instr.dst; fn; captures } ->
          Runtime.charge ctx (1 + Array.length captures);
          let env = Array.make (Array.length captures) Value.Unit in
          st.frame.(dst) <-
            Value.Mclosure { Value.m_unit = st.unit_code; m_fn = fn; m_env = env };
          env)
        defs
    in
    (* phase 2: fill captures, which may now refer to the nest itself *)
    List.iter2
      (fun { Instr.captures; _ } env ->
        Array.iteri (fun i op -> env.(i) <- operand st op) captures)
      defs envs;
    exec ctx st rest

and apply ctx (f : Value.t) (args : Value.t list) : Eval.outcome =
  match f with
  | Value.Mclosure c ->
    Runtime.charge ctx (1 + List.length args);
    let func = c.Value.m_unit.Instr.funcs.(c.Value.m_fn) in
    if List.length args <> func.Instr.arity then
      Runtime.fault "machine function %s/%d applied to %d arguments" func.Instr.fn_name
        func.Instr.arity (List.length args);
    let frame = Array.make (max func.Instr.nregs 1) Value.Unit in
    List.iteri (fun i v -> frame.(i) <- v) args;
    exec ctx { unit_code = c.Value.m_unit; env = c.Value.m_env; frame } func.Instr.body
  | Value.Mblock b ->
    Runtime.charge ctx 1;
    if List.length args <> Array.length b.Value.b_regs then
      Runtime.fault "continuation block expected %d values, got %d"
        (Array.length b.Value.b_regs) (List.length args);
    List.iteri (fun i v -> b.Value.b_frame.(b.Value.b_regs.(i)) <- v) args;
    exec ctx
      { unit_code = b.Value.b_unit; env = b.Value.b_env; frame = b.Value.b_frame }
      b.Value.b_code
  | Value.Primv name -> (
    let d =
      match Prim.find name with
      | Some d -> d
      | None -> Runtime.fault "unknown primitive %S" name
    in
    Runtime.charge ctx d.Prim.base_cost;
    match d.Prim.cont_arity with
    | Some nc ->
      let total = List.length args in
      if total < nc then Runtime.fault "%s: expected %d continuations" name nc;
      let rec split i acc = function
        | rest when i = total - nc -> List.rev acc, rest
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> assert false
      in
      let values, conts = split 0 [] args in
      let impl = Runtime.find_impl_exn name in
      let (Runtime.Invoke (k, results)) = impl ctx values conts in
      apply ctx k results
    | None -> Runtime.fault "%s: cannot be applied as a first-class value" name)
  | Value.Oidv oid -> (
    match Value.Heap.get_opt ctx.Runtime.heap oid with
    | Some (Value.Func fo) -> (
      (* call-into-tier hook: hot functions run on the compiled closure
         tier; the tier charges identically, so step counts don't move *)
      match Tierup.dispatch ctx oid fo with
      | Some entry ->
        if !Vmprof.enabled then
          Vmprof.note_apply ctx ~tier:"tiered" ~name:fo.Value.fo_name ~oid:(Oid.to_int oid);
        entry ctx args
      | None ->
        if !Vmprof.enabled then
          Vmprof.note_apply ctx ~tier:"machine" ~name:fo.Value.fo_name ~oid:(Oid.to_int oid);
        apply ctx (Compile.compile_func ctx fo) args)
    | Some _ -> Runtime.fault "%s is not applicable" (Oid.to_string oid)
    | None -> Runtime.fault "dangling function reference %s" (Oid.to_string oid))
  | Value.Halt ok -> (
    match args with
    | [ v ] -> if ok then Eval.Done v else Eval.Raised v
    | vs -> Runtime.fault "halt continuation received %d values" (List.length vs))
  | Value.Closure _ ->
    Runtime.fault "cannot apply a tree closure on the abstract machine"
  | v -> Runtime.fault "cannot apply %s" (Value.type_name v)

let protect ctx f =
  let saved = ctx.Runtime.subcall in
  let restore () = ctx.Runtime.subcall <- saved in
  (ctx.Runtime.subcall <-
     (fun fv args ->
       match apply ctx fv (args @ [ Value.Halt false; Value.Halt true ]) with
       | Eval.Done v -> Ok v
       | Eval.Raised v -> Error v
       | Eval.No_fuel -> raise Runtime.Fuel_exhausted
       | Eval.Fault msg -> raise (Runtime.Fault msg)));
  match f () with
  | outcome ->
    restore ();
    outcome
  | exception Runtime.Fuel_exhausted ->
    restore ();
    Eval.No_fuel
  | exception Runtime.Fault msg ->
    restore ();
    Eval.Fault msg

let apply ctx f args = protect ctx (fun () -> apply ctx f args)

(* the compiled tier escapes here for anything it doesn't handle; the
   protected applicator converts faults raised below into outcomes,
   which propagate unchanged through compiled frames to the caller *)
let () = Jit.escape_apply := apply

let run_proc ctx proc args =
  let steps0 = ctx.Runtime.steps in
  let outcome = apply ctx proc (args @ [ Value.Halt false; Value.Halt true ]) in
  if !Vmprof.enabled then Vmprof.flush ctx;
  Tml_obs.Events.vm_run ~engine:"machine" ~steps:(ctx.Runtime.steps - steps0);
  outcome

let run_abs ctx abs args =
  let unit_code, frees = Compile.compile_abs ~name:"main" abs in
  (match frees with
  | [] -> ()
  | id :: _ -> Runtime.fault "run_abs: unbound free identifier %s" (Ident.to_string id));
  let clo =
    Value.Mclosure { Value.m_unit = unit_code; m_fn = unit_code.Instr.entry; m_env = [||] }
  in
  run_proc ctx clo args

let func_impl = Compile.compile_func
