open Tml_core

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Char of char
  | Real of float
  | Str of string
  | Oidv of Oid.t
  | Primv of string
  | Closure of tree_closure
  | Mclosure of mclosure
  | Mblock of mblock
  | Halt of bool

and tree_closure = {
  t_abs : Term.abs;
  mutable t_env : t Ident.Map.t;
}

and mclosure = {
  m_unit : Instr.unit_code;
  m_fn : int;
  m_env : t array;
}

and mblock = {
  b_frame : t array;
  b_unit : Instr.unit_code;
  b_env : t array;
  b_regs : int array;
  b_code : Instr.code;
}

type obj =
  | Array of t array
  | Vector of t array
  | Bytes of bytes
  | Tuple of t array
  | Module of module_obj
  | Relation of relation
  | Func of func_obj
  | Index of index_obj
  | Stats of stats_obj

and module_obj = {
  mod_name : string;
  exports : (string * t) array;
}

and relation = {
  rel_name : string;
  rel_page_size : int;
  mutable rel_pages : Oid.t array;
      (** sealed row pages: each a [Vector] of exactly [rel_page_size]
          rows, faulted on demand — the full row array is never
          materialized by the relation object itself *)
  mutable rel_tail : t array;  (** growable tail buffer (capacity array) *)
  mutable rel_tail_len : int;  (** valid prefix of [rel_tail] *)
  mutable rel_count : int;  (** total logical rows = pages*page_size + tail_len *)
  mutable rel_indexes : (int * Oid.t) list;
      (** field -> sibling [Index] store object, persisted with the relation *)
  mutable rel_stats : Oid.t option;  (** sibling [Stats] store object *)
  mutable rel_triggers : t list;
      (** stored trigger procedures, called with each inserted tuple *)
  mutable rel_rows_cache : t array option;
      (** transient materialization for positional access; never serialized *)
}

and index_obj = {
  ix_field : int;
  ix_tbl : (Literal.t, int list) Hashtbl.t;
      (** key -> row positions, ascending *)
}

and stats_obj = {
  mutable st_count : int;
  mutable st_arity : int;  (** tuple width, -1 when unknown *)
  mutable st_distinct : (int * int) list;
      (** per-indexed-field distinct-key counts *)
}

and func_obj = {
  fo_name : string;
  fo_tml : Term.value;
  fo_ptml : string;
  mutable fo_bindings : (Ident.t * t) list;
  mutable fo_tree_impl : t option;
  mutable fo_mach_impl : t option;
  mutable fo_code : Instr.unit_code option;
  mutable fo_attrs : (string * int) list;
}

module Heap = struct
  type heap = {
    mutable objs : obj option array;
    mutable next : int;
    mutable gen : int;
        (* bumped whenever a slot is replaced/evicted or a hook changes;
           lets the compiled tier validate per-site inline caches *)
    mutable fault : (Oid.t -> obj option) option;
    mutable on_access : (Oid.t -> obj -> unit) option;
    mutable on_update : (Oid.t -> obj -> unit) option;
  }

  let create () =
    {
      objs = Array.make 64 None;
      next = 0;
      gen = 0;
      fault = None;
      on_access = None;
      on_update = None;
    }

  let generation heap = heap.gen

  let set_fault_hook heap f =
    heap.gen <- heap.gen + 1;
    heap.fault <- Some f

  let fault_hook heap = heap.fault

  let set_fault_hook_opt heap f =
    heap.gen <- heap.gen + 1;
    heap.fault <- f

  let set_access_hook heap f =
    heap.gen <- heap.gen + 1;
    heap.on_access <- Some f

  let access_hook heap = heap.on_access

  let set_access_hook_opt heap f =
    heap.gen <- heap.gen + 1;
    heap.on_access <- f

  let set_update_hook heap f =
    heap.gen <- heap.gen + 1;
    heap.on_update <- Some f

  let update_hook heap = heap.on_update

  let set_update_hook_opt heap f =
    heap.gen <- heap.gen + 1;
    heap.on_update <- f

  let clear_hooks heap =
    heap.gen <- heap.gen + 1;
    heap.fault <- None;
    heap.on_access <- None;
    heap.on_update <- None

  let ensure_capacity heap n =
    if n > Array.length heap.objs then begin
      let cap = ref (Array.length heap.objs) in
      while n > !cap do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap None in
      Array.blit heap.objs 0 bigger 0 heap.next;
      heap.objs <- bigger
    end

  let reserve heap n =
    ensure_capacity heap n;
    if n > heap.next then heap.next <- n

  let alloc heap obj =
    ensure_capacity heap (heap.next + 1);
    let ix = heap.next in
    heap.objs.(ix) <- Some obj;
    heap.next <- ix + 1;
    Oid.of_int ix

  let peek heap oid =
    let ix = Oid.to_int oid in
    if ix >= 0 && ix < heap.next then heap.objs.(ix) else None

  let get_opt heap oid =
    let ix = Oid.to_int oid in
    if ix < 0 || ix >= heap.next then None
    else begin
      match heap.objs.(ix) with
      | Some obj as r ->
        (match heap.on_access with
        | Some f -> f oid obj
        | None -> ());
        r
      | None -> (
        match heap.fault with
        | None -> None
        | Some f -> (
          match f oid with
          | Some obj as r ->
            heap.objs.(ix) <- Some obj;
            r
          | None -> None))
    end

  let get heap oid =
    match get_opt heap oid with
    | Some obj -> obj
    | None -> invalid_arg (Printf.sprintf "Heap.get: dangling %s" (Oid.to_string oid))

  let set heap oid obj =
    let ix = Oid.to_int oid in
    if ix < 0 || ix >= heap.next then
      invalid_arg (Printf.sprintf "Heap.set: dangling %s" (Oid.to_string oid));
    heap.gen <- heap.gen + 1;
    heap.objs.(ix) <- Some obj;
    (match heap.on_update with
    | Some f -> f oid obj
    | None -> ())

  let evict heap oid =
    let ix = Oid.to_int oid in
    if ix >= 0 && ix < heap.next then begin
      heap.gen <- heap.gen + 1;
      heap.objs.(ix) <- None
    end

  let is_loaded heap oid =
    let ix = Oid.to_int oid in
    ix >= 0
    && ix < heap.next
    &&
    match heap.objs.(ix) with
    | Some _ -> true
    | None -> false

  let loaded_count heap =
    let n = ref 0 in
    for ix = 0 to heap.next - 1 do
      match heap.objs.(ix) with
      | Some _ -> incr n
      | None -> ()
    done;
    !n

  let size heap = heap.next

  let iter f heap =
    for ix = 0 to heap.next - 1 do
      match heap.objs.(ix) with
      | Some obj -> f (Oid.of_int ix) obj
      | None -> ()
    done

  let alloc_func heap ~name tml =
    alloc heap
      (Func
         {
           fo_name = name;
           fo_tml = tml;
           fo_ptml = Tml_store.Ptml.encode_value tml;
           fo_bindings = [];
           fo_tree_impl = None;
           fo_mach_impl = None;
           fo_code = None;
           fo_attrs = [];
         })
end

let identical a b =
  match a, b with
  | Unit, Unit -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Char a, Char b -> a = b
  | Real a, Real b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Str a, Str b -> String.equal a b
  | Oidv a, Oidv b -> Oid.equal a b
  | Primv a, Primv b -> String.equal a b
  | Closure a, Closure b -> a == b
  | Mclosure a, Mclosure b -> a == b
  | Mblock a, Mblock b -> a == b
  | Halt a, Halt b -> a = b
  | _ -> false

let of_literal = function
  | Literal.Unit -> Unit
  | Literal.Bool b -> Bool b
  | Literal.Int i -> Int i
  | Literal.Char c -> Char c
  | Literal.Real r -> Real r
  | Literal.Str s -> Str s
  | Literal.Oid o -> Oidv o

let to_literal = function
  | Unit -> Some Literal.Unit
  | Bool b -> Some (Literal.Bool b)
  | Int i -> Some (Literal.Int i)
  | Char c -> Some (Literal.Char c)
  | Real r -> Some (Literal.Real r)
  | Str s -> Some (Literal.Str s)
  | Oidv o -> Some (Literal.Oid o)
  | Primv _ | Closure _ | Mclosure _ | Mblock _ | Halt _ -> None

let type_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Char _ -> "char"
  | Real _ -> "real"
  | Str _ -> "string"
  | Oidv _ -> "oid"
  | Primv _ -> "primitive"
  | Closure _ -> "closure"
  | Mclosure _ -> "machine-closure"
  | Mblock _ -> "machine-block"
  | Halt _ -> "halt"

let pp ppf = function
  | Unit -> Format.pp_print_string ppf "nil"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Char c -> Format.fprintf ppf "'%s'" (Char.escaped c)
  | Real r -> Format.fprintf ppf "%g" r
  | Str s -> Format.fprintf ppf "%S" s
  | Oidv o -> Oid.pp ppf o
  | Primv name -> Format.fprintf ppf "#%s" name
  | Closure c -> Format.fprintf ppf "<closure/%d>" (List.length c.t_abs.Term.params)
  | Mclosure c -> Format.fprintf ppf "<mclosure fn%d>" c.m_fn
  | Mblock _ -> Format.pp_print_string ppf "<mblock>"
  | Halt ok -> Format.fprintf ppf "<halt %b>" ok

let to_string v = Format.asprintf "%a" pp v
