open Tml_core

type ctx = {
  heap : Value.Heap.heap;
  mutable handlers : Value.t list;
  mutable steps : int;
  mutable fuel : int;
  out : Buffer.t;
  ccalls : (string, ccall_impl) Hashtbl.t;
  mutable subcall : Value.t -> Value.t list -> (Value.t, Value.t) result;
  mutable durable_commit : (unit -> unit) option;
}

and ccall_impl = ctx -> Value.t list -> (Value.t, Value.t) result

exception Fuel_exhausted
exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

let charge ctx cost =
  ctx.steps <- ctx.steps + cost;
  if ctx.fuel <> max_int then begin
    ctx.fuel <- ctx.fuel - cost;
    if ctx.fuel < 0 then raise Fuel_exhausted
  end

type prim_result = Invoke of Value.t * Value.t list
type impl = ctx -> Value.t list -> Value.t list -> prim_result

let impls : (string, impl) Hashtbl.t = Hashtbl.create 64

let register_impl ?(override = false) name impl =
  if (not override) && Hashtbl.mem impls name then
    invalid_arg (Printf.sprintf "Runtime.register_impl: %S already registered" name);
  Hashtbl.replace impls name impl

let find_impl name = Hashtbl.find_opt impls name

let find_impl_exn name =
  match find_impl name with
  | Some impl -> impl
  | None -> fault "primitive %S has no runtime implementation" name

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let as_int ~what = function
  | Value.Int i -> i
  | v -> fault "%s: expected int, got %s" what (Value.type_name v)

let as_real ~what = function
  | Value.Real r -> r
  | v -> fault "%s: expected real, got %s" what (Value.type_name v)

let as_bool ~what = function
  | Value.Bool b -> b
  | v -> fault "%s: expected bool, got %s" what (Value.type_name v)

let as_char ~what = function
  | Value.Char c -> c
  | v -> fault "%s: expected char, got %s" what (Value.type_name v)

let as_str ~what = function
  | Value.Str s -> s
  | v -> fault "%s: expected string, got %s" what (Value.type_name v)

let as_oid ~what = function
  | Value.Oidv o -> o
  | v -> fault "%s: expected oid, got %s" what (Value.type_name v)

let as_array ctx ~what v =
  match Value.Heap.get ctx.heap (as_oid ~what v) with
  | Value.Array slots -> slots
  | _ -> fault "%s: expected a mutable array" what

let as_indexable ctx ~what v =
  match Value.Heap.get ctx.heap (as_oid ~what v) with
  | Value.Array slots | Value.Vector slots | Value.Tuple slots -> slots
  | Value.Relation rel ->
    (* positional, read-only access to the rows of a relation:
       materialized once per version and memoized on the header (the
       query primitives iterate pages directly instead) *)
    Relcore.snapshot_rows ctx.heap rel
  | _ -> fault "%s: expected an array, vector, tuple or relation" what

let as_bytes ctx ~what v =
  match Value.Heap.get ctx.heap (as_oid ~what v) with
  | Value.Bytes b -> b
  | _ -> fault "%s: expected a byte array" what

(* ------------------------------------------------------------------ *)
(* Standard implementations                                             *)
(* ------------------------------------------------------------------ *)

let exn_str s = Value.Str s
let ret k v = Invoke (k, [ v ])

let int_arith name checked =
  fun _ctx values conts ->
    match values, conts with
    | [ a; b ], [ ce; cc ] -> (
      let a = as_int ~what:name a and b = as_int ~what:name b in
      match checked a b with
      | Some r -> ret cc (Value.Int r)
      | None ->
        let msg =
          if (name = "/" || name = "%") && b = 0 then Primitives.div_zero_message
          else Primitives.overflow_message
        in
        ret ce (exn_str msg))
    | _ -> fault "%s: bad arguments" name

let int_cmp name op =
  fun _ctx values conts ->
    match values, conts with
    | [ a; b ], [ c_then; c_else ] ->
      let a = as_int ~what:name a and b = as_int ~what:name b in
      Invoke ((if op a b then c_then else c_else), [])
    | _ -> fault "%s: bad arguments" name

let bit_op name op =
  fun _ctx values conts ->
    match values, conts with
    | [ a; b ], [ k ] ->
      ret k (Value.Int (op (as_int ~what:name a) (as_int ~what:name b)))
    | _ -> fault "%s: bad arguments" name

let unop name f =
  fun _ctx values conts ->
    match values, conts with
    | [ a ], [ k ] -> ret k (f a)
    | _ -> fault "%s: bad arguments" name

let real_arith name op =
  fun _ctx values conts ->
    match values, conts with
    | [ a; b ], [ k ] -> ret k (Value.Real (op (as_real ~what:name a) (as_real ~what:name b)))
    | _ -> fault "%s: bad arguments" name

let real_cmp name op =
  fun _ctx values conts ->
    match values, conts with
    | [ a; b ], [ c_then; c_else ] ->
      Invoke ((if op (as_real ~what:name a) (as_real ~what:name b) then c_then else c_else), [])
    | _ -> fault "%s: bad arguments" name

let bool_op name op =
  fun _ctx values conts ->
    match values, conts with
    | [ a; b ], [ k ] -> ret k (Value.Bool (op (as_bool ~what:name a) (as_bool ~what:name b)))
    | _ -> fault "%s: bad arguments" name

let check_bounds ~what slots i =
  if i < 0 || i >= Array.length slots then
    fault "%s: index %d out of bounds (size %d)" what i (Array.length slots)

let check_bbounds ~what b i =
  if i < 0 || i >= Bytes.length b then
    fault "%s: index %d out of bounds (size %d)" what i (Bytes.length b)

let standard_impls () : (string * impl) list =
  [
    "+", int_arith "+" Primitives.add_checked;
    "-", int_arith "-" Primitives.sub_checked;
    "*", int_arith "*" Primitives.mul_checked;
    "/", int_arith "/" Primitives.div_checked;
    "%", int_arith "%" Primitives.rem_checked;
    "<", int_cmp "<" ( < );
    "<=", int_cmp "<=" ( <= );
    ">", int_cmp ">" ( > );
    ">=", int_cmp ">=" ( >= );
    "band", bit_op "band" ( land );
    "bor", bit_op "bor" ( lor );
    "bxor", bit_op "bxor" ( lxor );
    ( "bshl",
      bit_op "bshl" (fun a b ->
          if b < 0 || b >= Sys.int_size then fault "bshl: shift %d out of range" b else a lsl b)
    );
    ( "bshr",
      bit_op "bshr" (fun a b ->
          if b < 0 || b >= Sys.int_size then fault "bshr: shift %d out of range" b else a asr b)
    );
    "bnot", unop "bnot" (fun v -> Value.Int (lnot (as_int ~what:"bnot" v)));
    "char2int", unop "char2int" (fun v -> Value.Int (Char.code (as_char ~what:"char2int" v)));
    ( "int2char",
      unop "int2char" (fun v -> Value.Char (Char.chr (as_int ~what:"int2char" v land 0xff))) );
    ( "int2real",
      unop "int2real" (fun v -> Value.Real (float_of_int (as_int ~what:"int2real" v))) );
    ( "real2int",
      unop "real2int" (fun v ->
          let r = as_real ~what:"real2int" v in
          if Float.is_finite r && Float.abs r < 0x1p62 then Value.Int (int_of_float r)
          else fault "real2int: %g not representable" r) );
    "f+", real_arith "f+" ( +. );
    "f-", real_arith "f-" ( -. );
    "f*", real_arith "f*" ( *. );
    "f/", real_arith "f/" ( /. );
    "fneg", unop "fneg" (fun v -> Value.Real (-.as_real ~what:"fneg" v));
    "sqrt", unop "sqrt" (fun v -> Value.Real (Float.sqrt (as_real ~what:"sqrt" v)));
    "fsin", unop "fsin" (fun v -> Value.Real (Float.sin (as_real ~what:"fsin" v)));
    "fcos", unop "fcos" (fun v -> Value.Real (Float.cos (as_real ~what:"fcos" v)));
    "f<", real_cmp "f<" ( < );
    "f<=", real_cmp "f<=" ( <= );
    "f>", real_cmp "f>" ( > );
    "f>=", real_cmp "f>=" ( >= );
    "and", bool_op "and" ( && );
    "or", bool_op "or" ( || );
    "not", unop "not" (fun v -> Value.Bool (not (as_bool ~what:"not" v)));
    ( "sconcat",
      fun _ctx values conts ->
        match values, conts with
        | [ a; b ], [ k ] ->
          ret k (Value.Str (as_str ~what:"sconcat" a ^ as_str ~what:"sconcat" b))
        | _ -> fault "sconcat: bad arguments" );
    "slen", unop "slen" (fun v -> Value.Int (String.length (as_str ~what:"slen" v)));
    ( "s[]",
      fun _ctx values conts ->
        match values, conts with
        | [ s; i ], [ k ] ->
          let s = as_str ~what:"s[]" s and i = as_int ~what:"s[]" i in
          if i < 0 || i >= String.length s then
            fault "s[]: index %d out of bounds (length %d)" i (String.length s)
          else ret k (Value.Char s.[i])
        | _ -> fault "s[]: bad arguments" );
    ( "substr",
      fun _ctx values conts ->
        match values, conts with
        | [ s; pos; len ], [ k ] ->
          let s = as_str ~what:"substr" s in
          let pos = as_int ~what:"substr" pos and len = as_int ~what:"substr" len in
          if pos < 0 || len < 0 || pos + len > String.length s then
            fault "substr: range %d+%d out of bounds (length %d)" pos len (String.length s)
          else ret k (Value.Str (String.sub s pos len))
        | _ -> fault "substr: bad arguments" );
    ( "char2str",
      unop "char2str" (fun v -> Value.Str (String.make 1 (as_char ~what:"char2str" v))) );
    ( "int2str",
      unop "int2str" (fun v -> Value.Str (string_of_int (as_int ~what:"int2str" v))) );
    ( "str2int",
      fun _ctx values conts ->
        match values, conts with
        | [ s ], [ ce; cc ] -> (
          let s = as_str ~what:"str2int" s in
          match int_of_string_opt (String.trim s) with
          | Some i -> ret cc (Value.Int i)
          | None -> ret ce (exn_str ("not an integer: " ^ s)))
        | _ -> fault "str2int: bad arguments" );
    ( "scmp",
      fun _ctx values conts ->
        match values, conts with
        | [ a; b ], [ k ] ->
          ret k
            (Value.Int
               (compare (String.compare (as_str ~what:"scmp" a) (as_str ~what:"scmp" b)) 0))
        | _ -> fault "scmp: bad arguments" );
    ( "array",
      fun ctx values conts ->
        match conts with
        | [ k ] ->
          ret k (Value.Oidv (Value.Heap.alloc ctx.heap (Value.Array (Array.of_list values))))
        | _ -> fault "array: bad arguments" );
    ( "vector",
      fun ctx values conts ->
        match conts with
        | [ k ] ->
          ret k (Value.Oidv (Value.Heap.alloc ctx.heap (Value.Vector (Array.of_list values))))
        | _ -> fault "vector: bad arguments" );
    ( "new",
      fun ctx values conts ->
        match values, conts with
        | [ n; init ], [ k ] ->
          let n = as_int ~what:"new" n in
          if n < 0 then fault "new: negative size %d" n;
          ret k (Value.Oidv (Value.Heap.alloc ctx.heap (Value.Array (Array.make n init))))
        | _ -> fault "new: bad arguments" );
    ( "bnew",
      fun ctx values conts ->
        match values, conts with
        | [ n; init ], [ k ] ->
          let n = as_int ~what:"bnew" n in
          if n < 0 then fault "bnew: negative size %d" n;
          let byte = as_int ~what:"bnew" init land 0xff in
          ret k
            (Value.Oidv (Value.Heap.alloc ctx.heap (Value.Bytes (Bytes.make n (Char.chr byte)))))
        | _ -> fault "bnew: bad arguments" );
    ( "[]",
      fun ctx values conts ->
        match values, conts with
        | [ a; i ], [ k ] ->
          let slots = as_indexable ctx ~what:"[]" a in
          let i = as_int ~what:"[]" i in
          check_bounds ~what:"[]" slots i;
          ret k slots.(i)
        | _ -> fault "[]: bad arguments" );
    ( "[:=]",
      fun ctx values conts ->
        match values, conts with
        | [ a; i; v ], [ k ] ->
          let slots = as_array ctx ~what:"[:=]" a in
          let i = as_int ~what:"[:=]" i in
          check_bounds ~what:"[:=]" slots i;
          slots.(i) <- v;
          ret k Value.Unit
        | _ -> fault "[:=]: bad arguments" );
    ( "b[]",
      fun ctx values conts ->
        match values, conts with
        | [ a; i ], [ k ] ->
          let b = as_bytes ctx ~what:"b[]" a in
          let i = as_int ~what:"b[]" i in
          check_bbounds ~what:"b[]" b i;
          ret k (Value.Int (Char.code (Bytes.get b i)))
        | _ -> fault "b[]: bad arguments" );
    ( "b[:=]",
      fun ctx values conts ->
        match values, conts with
        | [ a; i; v ], [ k ] ->
          let b = as_bytes ctx ~what:"b[:=]" a in
          let i = as_int ~what:"b[:=]" i in
          check_bbounds ~what:"b[:=]" b i;
          Bytes.set b i (Char.chr (as_int ~what:"b[:=]" v land 0xff));
          ret k Value.Unit
        | _ -> fault "b[:=]: bad arguments" );
    ( "size",
      fun ctx values conts ->
        match values, conts with
        | [ a ], [ k ] -> ret k (Value.Int (Array.length (as_indexable ctx ~what:"size" a)))
        | _ -> fault "size: bad arguments" );
    ( "bsize",
      fun ctx values conts ->
        match values, conts with
        | [ a ], [ k ] -> ret k (Value.Int (Bytes.length (as_bytes ctx ~what:"bsize" a)))
        | _ -> fault "bsize: bad arguments" );
    ( "move",
      fun ctx values conts ->
        match values, conts with
        | [ src; soff; dst; doff; len ], [ k ] ->
          let s = as_indexable ctx ~what:"move" src in
          let d = as_array ctx ~what:"move" dst in
          let soff = as_int ~what:"move" soff
          and doff = as_int ~what:"move" doff
          and len = as_int ~what:"move" len in
          if
            len < 0 || soff < 0 || doff < 0
            || soff + len > Array.length s
            || doff + len > Array.length d
          then fault "move: range out of bounds";
          Array.blit s soff d doff len;
          ret k Value.Unit
        | _ -> fault "move: bad arguments" );
    ( "bmove",
      fun ctx values conts ->
        match values, conts with
        | [ src; soff; dst; doff; len ], [ k ] ->
          let s = as_bytes ctx ~what:"bmove" src in
          let d = as_bytes ctx ~what:"bmove" dst in
          let soff = as_int ~what:"bmove" soff
          and doff = as_int ~what:"bmove" doff
          and len = as_int ~what:"bmove" len in
          if
            len < 0 || soff < 0 || doff < 0
            || soff + len > Bytes.length s
            || doff + len > Bytes.length d
          then fault "bmove: range out of bounds";
          Bytes.blit s soff d doff len;
          ret k Value.Unit
        | _ -> fault "bmove: bad arguments" );
    ( "==",
      fun _ctx values conts ->
        match values with
        | scrutinee :: tags ->
          let n_tags = List.length tags and n_conts = List.length conts in
          if not (n_conts = n_tags || n_conts = n_tags + 1) then
            fault "==: %d tags with %d continuations" n_tags n_conts;
          let rec scan tags branches =
            match tags, branches with
            | tag :: tags', branch :: branches' ->
              if Value.identical scrutinee tag then Invoke (branch, [])
              else scan tags' branches'
            | [], [ default ] -> Invoke (default, [])
            | [], [] -> fault "==: no branch matches %s" (Value.to_string scrutinee)
            | _ -> assert false
          in
          scan tags conts
        | [] -> fault "==: missing scrutinee" );
    ( "ccall",
      fun ctx values conts ->
        match values, conts with
        | name :: args, [ ce; cc ] -> (
          let name = as_str ~what:"ccall" name in
          match Hashtbl.find_opt ctx.ccalls name with
          | None -> fault "ccall: unknown host function %S" name
          | Some f -> (
            match f ctx args with
            | Ok v -> ret cc v
            | Error e -> ret ce e))
        | _ -> fault "ccall: bad arguments" );
    ( "pushHandler",
      fun ctx values conts ->
        match values, conts with
        | [], [ handler; k ] ->
          ctx.handlers <- handler :: ctx.handlers;
          Invoke (k, [])
        | _ -> fault "pushHandler: bad arguments" );
    ( "popHandler",
      fun ctx values conts ->
        match values, conts with
        | [], [ k ] -> (
          match ctx.handlers with
          | _ :: rest ->
            ctx.handlers <- rest;
            Invoke (k, [])
          | [] -> fault "popHandler: empty handler stack")
        | _ -> fault "popHandler: bad arguments" );
    ( "raise",
      fun ctx values conts ->
        match values, conts with
        | [ v ], [] -> (
          match ctx.handlers with
          | handler :: rest ->
            ctx.handlers <- rest;
            Invoke (handler, [ v ])
          | [] -> Invoke (Value.Halt false, [ v ]))
        | _ -> fault "raise: bad arguments" );
  ]

let installed = ref false

(* the exact closures registered by [install]; [is_standard_impl] lets
   clients that hard-code a primitive's behaviour (the closure-compiling
   tier's fast paths) verify the registered implementation has not been
   overridden since *)
let std_table : (string, impl) Hashtbl.t = Hashtbl.create 64

let install () =
  if not !installed then begin
    installed := true;
    Primitives.install ();
    List.iter
      (fun (name, impl) ->
        Hashtbl.replace std_table name impl;
        register_impl ~override:true name impl)
      (standard_impls ())
  end

let is_standard_impl name =
  match Hashtbl.find_opt std_table name, find_impl name with
  | Some a, Some b -> a == b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Context and default host functions                                   *)
(* ------------------------------------------------------------------ *)

let default_ccalls : (string * ccall_impl) list =
  [
    ( "print_str",
      fun ctx args ->
        match args with
        | [ v ] ->
          Buffer.add_string ctx.out (as_str ~what:"print_str" v);
          Ok Value.Unit
        | _ -> fault "print_str: bad arguments" );
    ( "print_int",
      fun ctx args ->
        match args with
        | [ v ] ->
          Buffer.add_string ctx.out (string_of_int (as_int ~what:"print_int" v));
          Ok Value.Unit
        | _ -> fault "print_int: bad arguments" );
    ( "print_char",
      fun ctx args ->
        match args with
        | [ v ] ->
          Buffer.add_char ctx.out (as_char ~what:"print_char" v);
          Ok Value.Unit
        | _ -> fault "print_char: bad arguments" );
    ( "print_real",
      fun ctx args ->
        match args with
        | [ v ] ->
          Buffer.add_string ctx.out (Printf.sprintf "%.6g" (as_real ~what:"print_real" v));
          Ok Value.Unit
        | _ -> fault "print_real: bad arguments" );
    ( "newline",
      fun ctx args ->
        match args with
        | [] | [ Value.Unit ] ->
          Buffer.add_char ctx.out '\n';
          Ok Value.Unit
        | _ -> fault "newline: bad arguments" );
  ]

let create ?(fuel = max_int) heap =
  install ();
  let ctx =
    {
      heap;
      handlers = [];
      steps = 0;
      fuel;
      out = Buffer.create 256;
      ccalls = Hashtbl.create 16;
      subcall = (fun _ _ -> fault "no engine installed for re-entrant calls");
      durable_commit = None;
    }
  in
  List.iter (fun (name, f) -> Hashtbl.replace ctx.ccalls name f) default_ccalls;
  ctx

let register_ccall ctx name f = Hashtbl.replace ctx.ccalls name f
