(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.  All values
   stay below 2^32 and therefore fit comfortably in OCaml's 63-bit ints. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
