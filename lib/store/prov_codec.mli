(** Binary codec for optimization derivation logs
    ([Tml_obs.Provenance.t]), persisted in the durable image as [Bytes]
    heap objects referenced from a function's ["provenance"] attribute
    (so the object codec and existing images are untouched).  Also
    embedded in speccache entries via {!encode_into}/{!decode_from}. *)

exception Corrupt of string

(** Format magic, ["PRV1"]. *)
val magic : string

val encode : Tml_obs.Provenance.t -> string

(** @raise Corrupt on bad magic, truncation or malformed varints. *)
val decode : string -> Tml_obs.Provenance.t

(** Writer/reader-level variants for embedding in a larger record. *)
val encode_into : Codec.W.t -> Tml_obs.Provenance.t -> unit

val decode_from : Codec.R.t -> Tml_obs.Provenance.t
