open Tml_core

exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

(* Node tags *)
let tag_unit = 0
let tag_false = 1
let tag_true = 2
let tag_int = 3
let tag_char = 4
let tag_real = 5
let tag_str = 6
let tag_oid = 7
let tag_var = 8
let tag_prim = 9
let tag_abs = 10

let magic = "PTML1"

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

type pool = {
  mutable strings : string list;  (* reversed *)
  mutable count : int;
  index : (string, int) Hashtbl.t;
}

let pool_create () = { strings = []; count = 0; index = Hashtbl.create 32 }

let intern pool s =
  match Hashtbl.find_opt pool.index s with
  | Some i -> i
  | None ->
    let i = pool.count in
    Hashtbl.add pool.index s i;
    pool.strings <- s :: pool.strings;
    pool.count <- pool.count + 1;
    i

let rec collect_value pool (v : Term.value) =
  match v with
  | Term.Lit (Literal.Str s) -> ignore (intern pool s)
  | Term.Lit _ -> ()
  | Term.Var id -> ignore (intern pool id.Ident.name)
  | Term.Prim name -> ignore (intern pool name)
  | Term.Abs a ->
    List.iter (fun p -> ignore (intern pool p.Ident.name)) a.params;
    collect_app pool a.body

and collect_app pool (a : Term.app) =
  collect_value pool a.func;
  List.iter (collect_value pool) a.args

let write_ident w pool (id : Ident.t) =
  Codec.W.varint w (intern pool id.Ident.name);
  Codec.W.varint w id.Ident.stamp;
  Codec.W.u8 w (if Ident.is_cont id then 1 else 0)

let rec write_value w pool (v : Term.value) =
  match v with
  | Term.Lit Literal.Unit -> Codec.W.u8 w tag_unit
  | Term.Lit (Literal.Bool false) -> Codec.W.u8 w tag_false
  | Term.Lit (Literal.Bool true) -> Codec.W.u8 w tag_true
  | Term.Lit (Literal.Int i) ->
    Codec.W.u8 w tag_int;
    Codec.W.svarint w i
  | Term.Lit (Literal.Char c) ->
    Codec.W.u8 w tag_char;
    Codec.W.u8 w (Char.code c)
  | Term.Lit (Literal.Real r) ->
    Codec.W.u8 w tag_real;
    Codec.W.float64 w r
  | Term.Lit (Literal.Str s) ->
    Codec.W.u8 w tag_str;
    Codec.W.varint w (intern pool s)
  | Term.Lit (Literal.Oid o) ->
    Codec.W.u8 w tag_oid;
    Codec.W.varint w (Oid.to_int o)
  | Term.Var id ->
    Codec.W.u8 w tag_var;
    write_ident w pool id
  | Term.Prim name ->
    Codec.W.u8 w tag_prim;
    Codec.W.varint w (intern pool name)
  | Term.Abs a ->
    Codec.W.u8 w tag_abs;
    Codec.W.varint w (List.length a.params);
    List.iter (write_ident w pool) a.params;
    write_app w pool a.body

and write_app w pool (a : Term.app) =
  write_value w pool a.func;
  Codec.W.varint w (List.length a.args);
  List.iter (write_value w pool) a.args

let encode write_payload payload =
  (* Two passes: the pool must be complete before the body is written, but
     interning is deterministic, so we just run the collector first. *)
  let pool = pool_create () in
  (match payload with
  | `Value v -> collect_value pool v
  | `App a -> collect_app pool a);
  let w = Codec.W.create ~initial:1024 () in
  Codec.W.raw w magic;
  Codec.W.varint w pool.count;
  List.iter (fun s -> Codec.W.str w s) (List.rev pool.strings);
  write_payload w pool;
  Codec.W.contents w

let encode_value v = encode (fun w pool -> write_value w pool v) (`Value v)
let encode_app a = encode (fun w pool -> write_app w pool a) (`App a)

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

type dstate = {
  pool : string array;
  (* stamp -> identifier: occurrences of the same stamp must decode to the
     same identifier value *)
  idents : (int, Ident.t) Hashtbl.t;
}

let read_ident r st =
  let name_ix = Codec.R.varint r in
  let stamp = Codec.R.varint r in
  let sort_byte = Codec.R.u8 r in
  if name_ix >= Array.length st.pool then fail "identifier name index out of range";
  match Hashtbl.find_opt st.idents stamp with
  | Some id -> id
  | None ->
    let sort = if sort_byte = 1 then Ident.Cont else Ident.Value in
    let id = Ident.make ~name:st.pool.(name_ix) ~stamp ~sort in
    Hashtbl.add st.idents stamp id;
    id

let rec read_value r st : Term.value =
  let tag = Codec.R.u8 r in
  if tag = tag_unit then Term.unit_
  else if tag = tag_false then Term.bool_ false
  else if tag = tag_true then Term.bool_ true
  else if tag = tag_int then Term.int (Codec.R.svarint r)
  else if tag = tag_char then Term.char (Char.chr (Codec.R.u8 r land 0xff))
  else if tag = tag_real then Term.real (Codec.R.float64 r)
  else if tag = tag_str then begin
    let ix = Codec.R.varint r in
    if ix >= Array.length st.pool then fail "string index out of range";
    Term.str st.pool.(ix)
  end
  else if tag = tag_oid then Term.oid (Oid.of_int (Codec.R.varint r))
  else if tag = tag_var then Term.var (read_ident r st)
  else if tag = tag_prim then begin
    let ix = Codec.R.varint r in
    if ix >= Array.length st.pool then fail "primitive index out of range";
    Term.prim st.pool.(ix)
  end
  else if tag = tag_abs then begin
    let n = Codec.R.varint r in
    if n > 1024 then fail "implausible parameter count %d" n;
    let params = List.init n (fun _ -> read_ident r st) in
    let body = read_app r st in
    Term.abs params body
  end
  else fail "unknown node tag %d" tag

and read_app r st : Term.app =
  let func = read_value r st in
  let n = Codec.R.varint r in
  if n > 4096 then fail "implausible argument count %d" n;
  let args = List.init n (fun _ -> read_value r st) in
  Term.app func args

let decode_header r =
  let m =
    try Codec.R.raw r (String.length magic) with
    | Codec.R.Truncated -> fail "truncated header"
  in
  if m <> magic then fail "bad magic %S" m;
  let count = Codec.R.varint r in
  if count > 1_000_000 then fail "implausible pool size %d" count;
  let pool = Array.init count (fun _ -> Codec.R.str r) in
  { pool; idents = Hashtbl.create 32 }

let decode_value s =
  let r = Codec.R.of_string s in
  try
    let st = decode_header r in
    let v = read_value r st in
    if not (Codec.R.at_end r) then fail "trailing bytes";
    v
  with
  | Codec.R.Truncated -> fail "truncated input"
  | Codec.R.Malformed msg -> fail "malformed input: %s" msg

let decode_app s =
  let r = Codec.R.of_string s in
  try
    let st = decode_header r in
    let a = read_app r st in
    if not (Codec.R.at_end r) then fail "trailing bytes";
    a
  with
  | Codec.R.Truncated -> fail "truncated input"
  | Codec.R.Malformed msg -> fail "malformed input: %s" msg

let encoded_size_value v = String.length (encode_value v)
