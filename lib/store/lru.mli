(** An O(1) least-recently-used recency tracker over integer keys (OIDs).

    The tracker holds keys only; the cached objects themselves live in the
    heap's slot array.  The object layer inserts a key when a {e clean}
    (evictable) object is materialized, re-[touch]es it on every access,
    [remove]s it when the object becomes dirty (pinned until the next
    commit), and [pop_lru]s victims when over capacity. *)

type t

val create : unit -> t
val length : t -> int
val mem : t -> int -> bool

val touch : t -> int -> unit
(** insert [key], or move it to the most-recently-used position *)

val remove : t -> int -> unit

val pop_lru : t -> int option
(** remove and return the least-recently-used key *)
