(** CRC-32 checksums (IEEE 802.3 polynomial), used to detect torn or
    corrupted records in the log-structured store. *)

val string : string -> int
(** [string s] — the CRC-32 of the whole string, in [0, 2^32). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] folds [len] bytes of [s] starting at [pos] into
    a running checksum, so a record can be checksummed without copying.
    [update 0 s 0 (String.length s) = string s]. *)
