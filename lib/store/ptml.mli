(** Persistent TML (PTML) — the compact persistent representation of TML
    trees (section 4.1).

    "For each exported source code function f in a compilation unit, the
    compiler back end augments the generated code for f with a reference to
    a compact persistent representation of the TML tree (Persistent TML,
    PTML) for f.  At runtime, it is possible to map PTML back into TML,
    re-invoke the optimizer and code-generator, link the newly-generated
    code into the running program, and execute it."

    The encoding is byte-oriented: a string pool (identifier base names,
    primitive names, string literals are interned), then the tree with
    one-byte node tags and varint-encoded operands.  Identifier stamps are
    preserved, so [decode (encode t)] is structurally equal to [t]; a client
    embedding a decoded tree into a live program should α-convert it
    ({!Tml_core.Alpha.convert_app}) to guarantee the unique binding rule
    against the rest of the program. *)

exception Decode_error of string

val encode_value : Tml_core.Term.value -> string
val encode_app : Tml_core.Term.app -> string

(** @raise Decode_error on malformed input. *)
val decode_value : string -> Tml_core.Term.value

(** @raise Decode_error on malformed input. *)
val decode_app : string -> Tml_core.Term.app

(** [encoded_size_value v] = [String.length (encode_value v)] — the measure
    used by the code-size experiment (E3). *)
val encoded_size_value : Tml_core.Term.value -> int
