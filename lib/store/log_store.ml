exception Store_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Store_error s)) fmt

let magic = "TMLLOG1\n"

(* The directory is multi-version: each OID maps to its version chain,
   newest first, each version tagged with the sequence number of the
   commit that sealed it.  Old versions are kept only while a snapshot
   pinned at an epoch that can still see them exists; with no pins the
   chain is always a single entry. *)
type entry = {
  e_off : int;  (* absolute file offset of the payload bytes *)
  e_len : int;
  e_seq : int;  (* sequence number of the sealing commit *)
}

type snapshot = {
  sn_seq : int;  (* the pinned epoch: the last sealed commit visible *)
  sn_root : int option;
  sn_max_oid : int;  (* highest sealed OID visible at the epoch *)
  mutable sn_active : bool;
}

type t = {
  ls_path : string;
  mutable fd : Unix.file_descr;
  dir : (int, entry list) Hashtbl.t;
  staged : (int, string) Hashtbl.t;
  mutable staged_order : int list;  (* reverse order of first staging *)
  mutable tail : int;  (* end of the last sealed transaction = append point *)
  mutable seq : int;  (* sequence number of the last sealed transaction *)
  mutable sroot : int option;
  mutable fsync : bool;
  mutable closed : bool;
  mutable pins : snapshot list;  (* active snapshots *)
  lock : Mutex.t;  (* guards the directory, the file cursor and the pins *)
  stats : Store_stats.t;
}

(* Every public operation holds the store lock for its whole duration:
   concurrent readers (snapshot faults share one file descriptor whose
   cursor lseek/read must not interleave) and the single committer are
   serialized here.  The lock is never held across calls back into user
   code. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let path t = t.ls_path
let stats t = t.stats
let root t = locked t (fun () -> t.sroot)
let seq t = locked t (fun () -> t.seq)
let file_bytes t = locked t (fun () -> t.tail)
let object_count t = locked t (fun () -> Hashtbl.length t.dir)
let staged_count t = locked t (fun () -> Hashtbl.length t.staged)
let set_fsync t b = locked t (fun () -> t.fsync <- b)
let fsync_enabled t = locked t (fun () -> t.fsync)
let check_open t = if t.closed then fail "store %s is closed" t.ls_path

let head_entry t oid =
  match Hashtbl.find_opt t.dir oid with
  | Some (e :: _) -> Some e
  | _ -> None

let mem t oid =
  locked t (fun () -> Hashtbl.mem t.staged oid || Hashtbl.mem t.dir oid)

let max_oid_u t =
  let m = Hashtbl.fold (fun oid _ acc -> max oid acc) t.dir (-1) in
  Hashtbl.fold (fun oid _ acc -> max oid acc) t.staged m

let max_oid t = locked t (fun () -> max_oid_u t)

let live_bytes_u t =
  Hashtbl.fold
    (fun _ es acc -> match es with e :: _ -> acc + e.e_len | [] -> acc)
    t.dir 0

let live_bytes t = locked t (fun () -> live_bytes_u t)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_seq sn = sn.sn_seq
let snapshot_root sn = sn.sn_root
let snapshot_max_oid sn = sn.sn_max_oid
let pinned_count t = locked t (fun () -> List.length t.pins)

let min_pin_u t =
  List.fold_left
    (fun acc sn -> match acc with None -> Some sn.sn_seq | Some m -> Some (min m sn.sn_seq))
    None t.pins

(* Keep every version a pinned epoch can still observe: all versions newer
   than the oldest pin, plus the newest version at or below it (the one
   that pin resolves to).  With no pins, just the head. *)
let prune_chain min_pin es =
  match min_pin with
  | None -> ( match es with e :: _ -> [ e ] | [] -> [])
  | Some m ->
    let rec keep = function
      | [] -> []
      | e :: rest -> if e.e_seq <= m then [ e ] else e :: keep rest
    in
    keep es

let prune_all_u t =
  let m = min_pin_u t in
  let shrunk =
    Hashtbl.fold
      (fun oid es acc ->
        let es' = prune_chain m es in
        if List.compare_lengths es es' <> 0 then (oid, es') :: acc else acc)
      t.dir []
  in
  List.iter (fun (oid, es) -> Hashtbl.replace t.dir oid es) shrunk

let pin t =
  locked t (fun () ->
      check_open t;
      let sealed_max = Hashtbl.fold (fun oid _ acc -> max oid acc) t.dir (-1) in
      let sn =
        { sn_seq = t.seq; sn_root = t.sroot; sn_max_oid = sealed_max; sn_active = true }
      in
      t.pins <- sn :: t.pins;
      sn)

let release t sn =
  locked t (fun () ->
      if sn.sn_active then begin
        sn.sn_active <- false;
        t.pins <- List.filter (fun s -> s != sn) t.pins;
        prune_all_u t
      end)

(* ------------------------------------------------------------------ *)
(* Low-level file I/O                                                   *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then go (pos + Unix.write_substring fd s pos (len - pos))
  in
  go 0

let read_exactly fd off len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create len in
  let rec go pos =
    if pos < len then begin
      let n = Unix.read fd b pos (len - pos) in
      if n = 0 then fail "unexpected end of store file";
      go (pos + n)
    end
  in
  go 0;
  Bytes.unsafe_to_string b

let read_whole fd =
  let len = (Unix.fstat fd).Unix.st_size in
  read_exactly fd 0 len

(* ------------------------------------------------------------------ *)
(* Record encoding                                                      *)
(*                                                                      *)
(* put:    0x01  varint oid  varint len  payload  crc32(le, 4 bytes)    *)
(* commit: 0x02  varint seq  varint count  varint root+1|0  crc32       *)
(*                                                                      *)
(* Each CRC covers every byte of its record before the CRC field.  A    *)
(* commit record seals the transaction formed by the puts since the     *)
(* previous seal; recovery discards any tail not ending in a valid      *)
(* seal.                                                                *)
(* ------------------------------------------------------------------ *)

let add_crc32_le buf crc =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * i)) land 0xff))
  done

(* Appends the record for [oid -> payload] to [buf]; returns the offset
   of the payload within [buf]. *)
let encode_put buf oid payload =
  let w = Codec.W.create ~initial:(String.length payload + 16) () in
  Codec.W.u8 w 1;
  Codec.W.varint w oid;
  Codec.W.str w payload;
  let s = Codec.W.contents w in
  let payload_off = Buffer.length buf + (String.length s - String.length payload) in
  Buffer.add_string buf s;
  add_crc32_le buf (Crc32.string s);
  payload_off

let encode_commit buf ~seq ~count ~root =
  let w = Codec.W.create ~initial:16 () in
  Codec.W.u8 w 2;
  Codec.W.varint w seq;
  Codec.W.varint w count;
  Codec.W.varint w (match root with None -> 0 | Some r -> r + 1);
  let s = Codec.W.contents w in
  Buffer.add_string buf s;
  add_crc32_le buf (Crc32.string s)

(* ------------------------------------------------------------------ *)
(* Recovery                                                             *)
(* ------------------------------------------------------------------ *)

exception Torn

let check_crc data start stop r =
  (* [start, stop) is the checksummed span; the 4 CRC bytes follow *)
  if stop + 4 > String.length data then raise Torn;
  let stored = ref 0 in
  for i = 3 downto 0 do
    stored := (!stored lsl 8) lor Char.code data.[stop + i]
  done;
  if Crc32.update 0 data start (stop - start) <> !stored then raise Torn;
  Codec.R.seek r (stop + 4)

(* Scans [data]; returns the directory, the sealed end offset, the last
   sequence number and the root.  Raises [Store_error] on a corrupt
   header; a torn or corrupt tail is cut, never fatal. *)
let recover data =
  if String.length data < String.length magic || not (String.sub data 0 8 = magic) then
    fail "not a TML store file (bad magic)";
  let dir = Hashtbl.create 256 in
  let r = Codec.R.of_string data in
  Codec.R.seek r (String.length magic);
  let sealed = ref (String.length magic) in
  let seq = ref 0 in
  let root = ref None in
  let pending = ref [] in
  (try
     while not (Codec.R.at_end r) do
       let start = Codec.R.pos r in
       match Codec.R.u8 r with
       | 1 ->
         let oid = Codec.R.varint r in
         let len = Codec.R.varint r in
         let off = Codec.R.pos r in
         if len > String.length data - off then raise Torn;
         Codec.R.seek r (off + len);
         check_crc data start (off + len) r;
         pending := (oid, off, len) :: !pending
       | 2 ->
         let s = Codec.R.varint r in
         let count = Codec.R.varint r in
         let root_field = Codec.R.varint r in
         check_crc data start (Codec.R.pos r) r;
         if count <> List.length !pending then raise Torn;
         List.iter
           (fun (oid, off, len) ->
             Hashtbl.replace dir oid [ { e_off = off; e_len = len; e_seq = s } ])
           (List.rev !pending);
         pending := [];
         sealed := Codec.R.pos r;
         seq := s;
         root := if root_field = 0 then None else Some (root_field - 1)
       | _ -> raise Torn
     done
   with
  | Torn | Codec.R.Truncated | Codec.R.Malformed _ -> ());
  dir, !sealed, !seq, !root

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let make ~path ~fd ~dir ~tail ~seq ~root ~fsync =
  {
    ls_path = path;
    fd;
    dir;
    staged = Hashtbl.create 64;
    staged_order = [];
    tail;
    seq;
    sroot = root;
    fsync;
    closed = false;
    pins = [];
    lock = Mutex.create ();
    stats = Store_stats.create ();
  }

let create ?(fsync = true) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd magic;
  if fsync then Unix.fsync fd;
  make ~path ~fd ~dir:(Hashtbl.create 256) ~tail:(String.length magic) ~seq:0 ~root:None
    ~fsync

let open_ ?(fsync = true) path =
  let fd =
    try Unix.openfile path [ Unix.O_RDWR ] 0o644 with
    | Unix.Unix_error (Unix.ENOENT, _, _) -> fail "no store file at %s" path
  in
  let data = read_whole fd in
  match recover data with
  | exception e ->
    Unix.close fd;
    raise e
  | dir, sealed, seq, root ->
    let t = make ~path ~fd ~dir ~tail:sealed ~seq ~root ~fsync in
    let dropped = String.length data - sealed in
    if dropped > 0 then begin
      Unix.ftruncate fd sealed;
      if fsync then Unix.fsync fd;
      t.stats.Store_stats.recovery_truncations <- 1;
      t.stats.Store_stats.truncated_bytes <- dropped
    end;
    t

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        List.iter (fun sn -> sn.sn_active <- false) t.pins;
        t.pins <- [];
        Unix.close t.fd
      end)

(* ------------------------------------------------------------------ *)
(* Reads                                                                *)
(* ------------------------------------------------------------------ *)

let find t oid =
  locked t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.staged oid with
      | Some payload -> Some payload
      | None -> (
        match head_entry t oid with
        | Some e -> Some (read_exactly t.fd e.e_off e.e_len)
        | None -> None))

(* A snapshot read never sees staged puts: only versions sealed at or
   before the pinned epoch. *)
let find_at t sn oid =
  locked t (fun () ->
      check_open t;
      if not sn.sn_active then fail "snapshot (epoch %d) released" sn.sn_seq;
      match Hashtbl.find_opt t.dir oid with
      | None -> None
      | Some es -> (
        match List.find_opt (fun e -> e.e_seq <= sn.sn_seq) es with
        | Some e -> Some (read_exactly t.fd e.e_off e.e_len)
        | None -> None))

let latest_seq t oid =
  locked t (fun () -> Option.map (fun e -> e.e_seq) (head_entry t oid))

let iter_live f t =
  let pairs =
    locked t (fun () ->
        check_open t;
        let oids = Hashtbl.fold (fun oid _ acc -> oid :: acc) t.dir [] in
        List.filter_map
          (fun oid ->
            match head_entry t oid with
            | Some e -> Some (oid, read_exactly t.fd e.e_off e.e_len)
            | None -> None)
          (List.sort compare oids))
  in
  List.iter (fun (oid, payload) -> f oid payload) pairs

(* ------------------------------------------------------------------ *)
(* Writes                                                               *)
(* ------------------------------------------------------------------ *)

let put t oid payload =
  locked t (fun () ->
      check_open t;
      if oid < 0 then fail "negative oid %d" oid;
      if not (Hashtbl.mem t.staged oid) then t.staged_order <- oid :: t.staged_order;
      Hashtbl.replace t.staged oid payload)

let commit ?root t =
  locked t (fun () ->
      check_open t;
      let new_root =
        match root with
        | Some _ -> root
        | None -> t.sroot
      in
      if Hashtbl.length t.staged = 0 && new_root = t.sroot then 0
      else begin
        let buf = Buffer.create 4096 in
        let entries =
          List.rev_map (fun oid -> oid, Hashtbl.find t.staged oid) t.staged_order
        in
        let seq' = t.seq + 1 in
        let located =
          List.map
            (fun (oid, payload) ->
              let payload_off = t.tail + encode_put buf oid payload in
              oid, { e_off = payload_off; e_len = String.length payload; e_seq = seq' })
            entries
        in
        encode_commit buf ~seq:seq' ~count:(List.length entries) ~root:new_root;
        ignore (Unix.lseek t.fd t.tail Unix.SEEK_SET);
        write_all t.fd (Buffer.contents buf);
        if t.fsync then Unix.fsync t.fd;
        let min_pin = min_pin_u t in
        List.iter
          (fun (oid, e) ->
            let old = Option.value ~default:[] (Hashtbl.find_opt t.dir oid) in
            Hashtbl.replace t.dir oid (e :: prune_chain min_pin old))
          located;
        t.tail <- t.tail + Buffer.length buf;
        t.seq <- seq';
        t.sroot <- new_root;
        Hashtbl.reset t.staged;
        t.staged_order <- [];
        let n = List.length entries in
        t.stats.Store_stats.commits <- t.stats.Store_stats.commits + 1;
        t.stats.Store_stats.records_written <- t.stats.Store_stats.records_written + n;
        t.stats.Store_stats.bytes_written <-
          t.stats.Store_stats.bytes_written + Buffer.length buf;
        Tml_obs.Events.store_commit ~objects:n ~bytes:(Buffer.length buf);
        n
      end)

(* ------------------------------------------------------------------ *)
(* Compaction                                                           *)
(* ------------------------------------------------------------------ *)

let compact t =
  locked t (fun () ->
      check_open t;
      if Hashtbl.length t.staged > 0 then fail "compact: uncommitted puts (commit first)";
      if t.pins <> [] then
        fail "compact: %d active snapshot(s) pin old versions" (List.length t.pins);
      let buf = Buffer.create (live_bytes_u t + 1024) in
      Buffer.add_string buf magic;
      let oids = List.sort compare (Hashtbl.fold (fun oid _ acc -> oid :: acc) t.dir []) in
      let seq' = t.seq + 1 in
      let located =
        List.filter_map
          (fun oid ->
            match head_entry t oid with
            | None -> None
            | Some e ->
              let payload = read_exactly t.fd e.e_off e.e_len in
              let payload_off = encode_put buf oid payload in
              Some (oid, { e_off = payload_off; e_len = e.e_len; e_seq = seq' }))
          oids
      in
      encode_commit buf ~seq:seq' ~count:(List.length located) ~root:t.sroot;
      let tmp = t.ls_path ^ ".compact" in
      let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      write_all fd (Buffer.contents buf);
      if t.fsync then Unix.fsync fd;
      Unix.rename tmp t.ls_path;
      Unix.close t.fd;
      t.fd <- fd;
      Hashtbl.reset t.dir;
      List.iter (fun (oid, e) -> Hashtbl.replace t.dir oid [ e ]) located;
      let old_tail = t.tail in
      t.tail <- Buffer.length buf;
      t.seq <- seq';
      t.stats.Store_stats.compactions <- t.stats.Store_stats.compactions + 1;
      Tml_obs.Events.store_compact ~live:(Buffer.length buf)
        ~dropped:(old_tail - Buffer.length buf))

(* ------------------------------------------------------------------ *)
(* Introspection                                                        *)
(* ------------------------------------------------------------------ *)

let register_metrics ?(name = "store.log") t =
  Tml_obs.Metrics.register_source ~name
    ~snapshot:(fun () ->
      locked t (fun () ->
          [
            "staged_count", Tml_obs.Metrics.I (Hashtbl.length t.staged);
            "seq", Tml_obs.Metrics.I t.seq;
            "fsync", Tml_obs.Metrics.I (if t.fsync then 1 else 0);
            "snapshots_pinned", Tml_obs.Metrics.I (List.length t.pins);
            "objects", Tml_obs.Metrics.I (Hashtbl.length t.dir);
            "file_bytes", Tml_obs.Metrics.I t.tail;
          ]))
    ~reset:(fun () -> ())
