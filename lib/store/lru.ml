(* Recency tracking for the decoded-object cache: an intrusive doubly
   linked list over integer keys plus a hash table, all operations O(1). *)

type node = {
  key : int;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  tbl : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
}

let create () = { tbl = Hashtbl.create 64; head = None; tail = None }
let length t = Hashtbl.length t.tbl
let mem t key = Hashtbl.mem t.tbl key

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let touch t key =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    unlink t node;
    push_front t node
  | None ->
    let node = { key; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl key
  | None -> ()

let pop_lru t =
  match t.tail with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl node.key;
    Some node.key
  | None -> None
