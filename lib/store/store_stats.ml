type t = {
  mutable commits : int;
  mutable records_written : int;
  mutable bytes_written : int;
  mutable faults : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable recovery_truncations : int;
  mutable truncated_bytes : int;
  mutable compactions : int;
}

let create () =
  {
    commits = 0;
    records_written = 0;
    bytes_written = 0;
    faults = 0;
    cache_hits = 0;
    cache_misses = 0;
    evictions = 0;
    recovery_truncations = 0;
    truncated_bytes = 0;
    compactions = 0;
  }

let reset t =
  t.commits <- 0;
  t.records_written <- 0;
  t.bytes_written <- 0;
  t.faults <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.evictions <- 0;
  t.recovery_truncations <- 0;
  t.truncated_bytes <- 0;
  t.compactions <- 0

let hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let fields t =
  [
    "commits", t.commits;
    "records_written", t.records_written;
    "bytes_written", t.bytes_written;
    "faults", t.faults;
    "cache_hits", t.cache_hits;
    "cache_misses", t.cache_misses;
    "evictions", t.evictions;
    "recovery_truncations", t.recovery_truncations;
    "truncated_bytes", t.truncated_bytes;
    "compactions", t.compactions;
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-21s %d" name v)
    (fields t);
  Format.fprintf ppf "@,%-21s %.3f" "cache_hit_rate" (hit_rate t);
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let register_metrics ?(name = "store") t =
  Tml_obs.Metrics.register_source ~name
    ~snapshot:(fun () ->
      List.map (fun (k, v) -> (k, Tml_obs.Metrics.I v)) (fields t)
      @ [ ("cache_hit_rate", Tml_obs.Metrics.F (hit_rate t)) ])
    ~reset:(fun () -> reset t)

let to_json t =
  let ints =
    List.map (fun (name, v) -> Printf.sprintf "%S: %d" name v) (fields t)
  in
  Printf.sprintf "{%s, \"cache_hit_rate\": %.4f}" (String.concat ", " ints) (hit_rate t)
