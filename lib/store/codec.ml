module W = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial
  let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

  let varint buf v =
    if v < 0 then invalid_arg "Codec.W.varint: negative argument";
    let rec go v =
      if v < 0x80 then u8 buf v
      else begin
        u8 buf (v land 0x7f lor 0x80);
        go (v lsr 7)
      end
    in
    go v

  let svarint buf v =
    (* signed LEB128 (sign-extended), safe for the whole [int] range *)
    let rec go v =
      let low = Int64.to_int (Int64.logand v 0x7fL) in
      let rest = Int64.shift_right v 7 in
      if (Int64.equal rest 0L && low land 0x40 = 0)
         || (Int64.equal rest (-1L) && low land 0x40 <> 0)
      then u8 buf low
      else begin
        u8 buf (low lor 0x80);
        go rest
      end
    in
    go (Int64.of_int v)

  let float64 buf f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let raw buf s = Buffer.add_string buf s

  let str buf s =
    varint buf (String.length s);
    raw buf s

  let length = Buffer.length
  let contents = Buffer.contents
end

module R = struct
  type t = {
    data : string;
    mutable pos : int;
  }

  exception Truncated
  exception Malformed of string

  let of_string data = { data; pos = 0 }

  let u8 r =
    if r.pos >= String.length r.data then raise Truncated;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  (* OCaml ints are 63-bit: a non-negative value carries at most 62
     significant bits, which LEB128 spreads over at most 9 bytes (the 9th
     holding 6 bits).  Anything longer, or a 9th byte with high bits set,
     would silently wrap around [lsl] — reject it instead. *)
  let varint r =
    let rec go shift acc =
      let b = u8 r in
      let low = b land 0x7f in
      if shift > 56 || (shift = 56 && low > 0x3f) then
        raise (Malformed "varint overflows the 63-bit integer range");
      let acc = acc lor (low lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  (* Sign-extended LEB128 of a 63-bit value fits in 9 bytes; reading a 10th
     would shift past bit 63 and drop bits silently. *)
  let svarint r =
    let rec go shift acc =
      if shift >= 63 then raise (Malformed "svarint longer than 9 bytes");
      let b = u8 r in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
      let shift = shift + 7 in
      if b land 0x80 <> 0 then go shift acc
      else begin
        let v =
          if shift < 64 && b land 0x40 <> 0 then
            Int64.logor acc (Int64.shift_left (-1L) shift)
          else acc
        in
        if Int64.of_int (Int64.to_int v) <> v then
          raise (Malformed "svarint overflows the integer range");
        Int64.to_int v
      end
    in
    go 0 0L

  let float64 r =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 r)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let raw r n =
    if r.pos + n > String.length r.data then raise Truncated;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let str r =
    let n = varint r in
    raw r n

  let pos r = r.pos

  let seek r pos =
    if pos < 0 || pos > String.length r.data then invalid_arg "Codec.R.seek";
    r.pos <- pos

  let at_end r = r.pos >= String.length r.data
end
