(** Binary encoding utilities shared by the PTML codec, the bytecode
    serializer and the store image format: LEB128 varints (with zigzag for
    signed values), IEEE doubles, and length-prefixed strings. *)

module W : sig
  type t

  val create : ?initial:int -> unit -> t
  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  (** unsigned LEB128; the argument must be non-negative *)

  val svarint : t -> int -> unit
  (** zigzag-encoded signed LEB128 *)

  val float64 : t -> float -> unit
  val str : t -> string -> unit
  (** length-prefixed *)

  val raw : t -> string -> unit
  val length : t -> int
  val contents : t -> string
end

module R : sig
  type t

  exception Truncated
  (** the input ended in the middle of a value *)

  exception Malformed of string
  (** the input is long enough but not a valid encoding: an LEB128
      sequence that never terminates within, or whose value exceeds, the
      63-bit OCaml integer range *)

  val of_string : string -> t
  val u8 : t -> int

  (** @raise Truncated @raise Malformed *)
  val varint : t -> int

  (** @raise Truncated @raise Malformed *)
  val svarint : t -> int
  val float64 : t -> float
  val str : t -> string
  val raw : t -> int -> string
  val pos : t -> int

  val seek : t -> int -> unit
  (** reposition the cursor (used by the log store's recovery scan) *)

  val at_end : t -> bool
end
