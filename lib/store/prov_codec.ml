(* Binary codec for optimization derivation logs (Tml_obs.Provenance.t).

   Layout: magic "PRV1", varint entry count, then per entry the rule,
   site and fact strings (length-prefixed) and the zigzag-encoded
   size/cost deltas.  Logs are persisted in the durable image as plain
   [Bytes] heap objects referenced from a function's ["provenance"]
   attribute, so the object codec itself is untouched and images
   without provenance remain byte-identical. *)

exception Corrupt of string

let magic = "PRV1"

let encode_into w (t : Tml_obs.Provenance.t) =
  Codec.W.raw w magic;
  Codec.W.varint w (List.length t);
  List.iter
    (fun (e : Tml_obs.Provenance.entry) ->
      Codec.W.str w e.pv_rule;
      Codec.W.str w e.pv_site;
      Codec.W.str w e.pv_fact;
      Codec.W.svarint w e.pv_size_delta;
      Codec.W.svarint w e.pv_cost_delta)
    t

let encode t =
  let w = Codec.W.create () in
  encode_into w t;
  Codec.W.contents w

let decode_from r : Tml_obs.Provenance.t =
  let m = try Codec.R.raw r 4 with Codec.R.Truncated -> raise (Corrupt "truncated magic") in
  if m <> magic then raise (Corrupt (Printf.sprintf "bad magic %S" m));
  try
    let n = Codec.R.varint r in
    if n < 0 || n > 1_000_000 then raise (Corrupt (Printf.sprintf "absurd entry count %d" n));
    List.init n (fun _ ->
        let pv_rule = Codec.R.str r in
        let pv_site = Codec.R.str r in
        let pv_fact = Codec.R.str r in
        let pv_size_delta = Codec.R.svarint r in
        let pv_cost_delta = Codec.R.svarint r in
        { Tml_obs.Provenance.pv_rule; pv_site; pv_fact; pv_size_delta; pv_cost_delta })
  with
  | Codec.R.Truncated -> raise (Corrupt "truncated")
  | Codec.R.Malformed m -> raise (Corrupt m)

let decode s =
  let r = Codec.R.of_string s in
  let t = decode_from r in
  if not (Codec.R.at_end r) then raise (Corrupt "trailing bytes");
  t
