(** Instrumentation counters for the durable object store: one record
    shared by the log layer ({!Log_store}: commits, bytes, recovery
    truncations) and the object layer ([Tml_vm.Pstore]: faults, cache
    hits/misses, evictions).  Printable from [tmlsh] ([:stats]) and
    emitted by the store benchmark. *)

type t = {
  mutable commits : int;  (** sealed transactions *)
  mutable records_written : int;  (** object records appended *)
  mutable bytes_written : int;  (** total bytes appended (incl. seals) *)
  mutable faults : int;  (** objects decoded on demand from the log *)
  mutable cache_hits : int;  (** accesses served by a materialized object *)
  mutable cache_misses : int;  (** accesses that had to fault *)
  mutable evictions : int;  (** clean objects dropped by the LRU cache *)
  mutable recovery_truncations : int;  (** torn tails cut off on open *)
  mutable truncated_bytes : int;  (** bytes discarded by those cuts *)
  mutable compactions : int;
}

val create : unit -> t
val reset : t -> unit

val hit_rate : t -> float
(** [cache_hits / (cache_hits + cache_misses)], 0 when idle. *)

val fields : t -> (string * int) list
(** counters in declaration order, as [(name, value)] pairs *)

val register_metrics : ?name:string -> t -> unit
(** expose [t] as a source (default name ["store"]) in the
    [Tml_obs.Metrics] registry; registering again replaces the previous
    source of the same name *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> string
(** one-line JSON object, for the benchmark harness *)
