(** An append-only, log-structured, single-file object store: the
    durability layer underneath the persistent heap (see docs/STORE.md).

    The file is a sequence of length-prefixed, CRC-32-checksummed records.
    [put] stages an [oid -> payload] pair; [commit] appends one record per
    staged pair followed by a {e commit record} that seals the transaction
    (write-ahead semantics: the seal is the atomic point — a transaction
    either ends in a valid seal or, after recovery, never happened).
    [open_] replays the log, rebuilds the in-memory OID directory from the
    sealed prefix and truncates any torn tail.

    This layer deals in opaque payload strings; encoding and decoding of
    store objects, lazy faulting and caching live in [Tml_vm.Pstore].

    {b Concurrency.}  Every operation takes the store's internal lock, so
    one [t] may be shared between threads: the server ([Tml_server])
    runs many snapshot readers and a single group-committing writer over
    one store.  The directory is {e multi-version}: while a {!snapshot}
    is pinned, superseded versions of an object stay reachable from the
    epoch the snapshot was pinned at, so a reader pinned at epoch [E]
    never observes a commit from epoch [E+1]. *)

exception Store_error of string

type t

(** {1 Lifecycle} *)

val create : ?fsync:bool -> string -> t
(** [create path] starts a fresh, empty store, truncating any existing
    file.  [fsync] (default [true]) controls whether commits flush to
    stable storage before returning. *)

val open_ : ?fsync:bool -> string -> t
(** [open_ path] recovers an existing store: the directory is rebuilt
    from the longest prefix ending in a valid commit record; anything
    after it (a torn write, a crashed transaction) is cut off and counted
    in {!stats}.  @raise Store_error if the file is missing or its header
    is not a store header. *)

val close : t -> unit

(** {1 Transactions} *)

val put : t -> int -> string -> unit
(** stage a payload for [oid] in the current transaction (last staging of
    an OID wins); durable only after {!commit} *)

val commit : ?root:int -> t -> int
(** [commit ?root t] appends all staged records and a sealing commit
    record, then (by default) fsyncs.  [root] updates the distinguished
    root OID stored in the seal (it is sticky across commits).  Returns
    the number of object records written; a commit with nothing staged
    and an unchanged root writes nothing and returns 0. *)

val staged_count : t -> int

(** {1 Reads} *)

val find : t -> int -> string option
(** [find t oid] — the current payload: a staged one if present, else the
    last sealed one, read back from the file. *)

val mem : t -> int -> bool

val root : t -> int option
(** the root OID recorded by the last seal — the entry point a client
    faults first on reopen (e.g. the session manifest) *)

val iter_live : (int -> string -> unit) -> t -> unit
(** iterate the sealed directory in ascending OID order *)

(** {1 Snapshots (MVCC read views)}

    A snapshot pins the store at its current committed epoch
    ({!seq}): reads through it resolve every OID to the newest version
    sealed {e at or before} that epoch, never to a staged put and never
    to a later commit.  Superseded versions are retained while any
    snapshot that can see them is pinned and pruned on {!release}. *)

type snapshot

val pin : t -> snapshot
(** pin a read view at the current committed epoch *)

val release : t -> snapshot -> unit
(** drop the pin and prune versions no remaining snapshot can see;
    idempotent *)

val snapshot_seq : snapshot -> int
(** the pinned epoch *)

val snapshot_root : snapshot -> int option
(** the root OID as sealed at the pinned epoch *)

val snapshot_max_oid : snapshot -> int
(** highest sealed OID visible at the pinned epoch; -1 when empty *)

val find_at : t -> snapshot -> int -> string option
(** [find_at t sn oid] — the payload of [oid] as of the snapshot's epoch.
    @raise Store_error if the snapshot was released *)

val latest_seq : t -> int -> int option
(** the epoch of the newest sealed version of an OID — the committer's
    first-committer-wins conflict check compares this against a writer's
    pinned epoch *)

val pinned_count : t -> int
(** number of active snapshots *)

(** {1 Introspection} *)

val path : t -> string
val stats : t -> Store_stats.t

val max_oid : t -> int
(** highest OID present (staged or sealed); -1 when empty *)

val object_count : t -> int
val seq : t -> int

val file_bytes : t -> int
(** size of the sealed log in bytes *)

val live_bytes : t -> int
(** payload bytes reachable from the directory (excludes superseded
    versions — the gap to {!file_bytes} is what {!compact} reclaims) *)

val set_fsync : t -> bool -> unit

val fsync_enabled : t -> bool
(** whether commits currently flush to stable storage — surfaced (with
    {!staged_count} and {!seq}) so server group-commit batching behaviour
    is inspectable *)

val register_metrics : ?name:string -> t -> unit
(** register a live metrics source (default name ["store.log"]) exposing
    [staged_count], [seq] (the epoch), [fsync], [snapshots_pinned],
    [objects] and [file_bytes] in the {!Tml_obs.Metrics} registry — the
    values [tmlsh :stats] and the server's [stat] frame report *)

(** {1 Compaction} *)

val compact : t -> unit
(** Rewrite only the live objects into a fresh file and atomically rename
    it over the store (offline: the caller must be the only user, with no
    staged puts and no pinned snapshots).  Directory offsets, sequence
    number and root carry over.
    @raise Store_error while snapshots are pinned *)
