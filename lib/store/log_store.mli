(** An append-only, log-structured, single-file object store: the
    durability layer underneath the persistent heap (see docs/STORE.md).

    The file is a sequence of length-prefixed, CRC-32-checksummed records.
    [put] stages an [oid -> payload] pair; [commit] appends one record per
    staged pair followed by a {e commit record} that seals the transaction
    (write-ahead semantics: the seal is the atomic point — a transaction
    either ends in a valid seal or, after recovery, never happened).
    [open_] replays the log, rebuilds the in-memory OID directory from the
    sealed prefix and truncates any torn tail.

    This layer deals in opaque payload strings; encoding and decoding of
    store objects, lazy faulting and caching live in [Tml_vm.Pstore]. *)

exception Store_error of string

type t

(** {1 Lifecycle} *)

val create : ?fsync:bool -> string -> t
(** [create path] starts a fresh, empty store, truncating any existing
    file.  [fsync] (default [true]) controls whether commits flush to
    stable storage before returning. *)

val open_ : ?fsync:bool -> string -> t
(** [open_ path] recovers an existing store: the directory is rebuilt
    from the longest prefix ending in a valid commit record; anything
    after it (a torn write, a crashed transaction) is cut off and counted
    in {!stats}.  @raise Store_error if the file is missing or its header
    is not a store header. *)

val close : t -> unit

(** {1 Transactions} *)

val put : t -> int -> string -> unit
(** stage a payload for [oid] in the current transaction (last staging of
    an OID wins); durable only after {!commit} *)

val commit : ?root:int -> t -> int
(** [commit ?root t] appends all staged records and a sealing commit
    record, then (by default) fsyncs.  [root] updates the distinguished
    root OID stored in the seal (it is sticky across commits).  Returns
    the number of object records written; a commit with nothing staged
    and an unchanged root writes nothing and returns 0. *)

val staged_count : t -> int

(** {1 Reads} *)

val find : t -> int -> string option
(** [find t oid] — the current payload: a staged one if present, else the
    last sealed one, read back from the file. *)

val mem : t -> int -> bool

val root : t -> int option
(** the root OID recorded by the last seal — the entry point a client
    faults first on reopen (e.g. the session manifest) *)

val iter_live : (int -> string -> unit) -> t -> unit
(** iterate the sealed directory in ascending OID order *)

(** {1 Introspection} *)

val path : t -> string
val stats : t -> Store_stats.t

val max_oid : t -> int
(** highest OID present (staged or sealed); -1 when empty *)

val object_count : t -> int
val seq : t -> int

val file_bytes : t -> int
(** size of the sealed log in bytes *)

val live_bytes : t -> int
(** payload bytes reachable from the directory (excludes superseded
    versions — the gap to {!file_bytes} is what {!compact} reclaims) *)

val set_fsync : t -> bool -> unit

(** {1 Compaction} *)

val compact : t -> unit
(** Rewrite only the live objects into a fresh file and atomically rename
    it over the store (offline: the caller must be the only user, with no
    staged puts).  Directory offsets, sequence number and root carry
    over. *)
