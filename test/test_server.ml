(* tmld in-process: MVCC snapshot isolation across sessions, group
   commit batching (fsync amortization), first-committer-wins conflicts,
   admission control / load shedding, the staged-byte cap, restart
   recovery and clean shutdown.  Set TML_SERVER_SOAK=1 (the @server
   alias) for a longer commit storm. *)

module Server = Tml_server.Server
module Client = Tml_server.Client
module Wire = Tml_server.Wire
module Metrics = Tml_obs.Metrics

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let soak = Sys.getenv_opt "TML_SERVER_SOAK" <> None

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let temp_path suffix =
  let path = Filename.temp_file "tml_server" suffix in
  Sys.remove path;
  path

let config ?(max_clients = 64) ?(window = 0.05) ?(staged_cap = 16 * 1024 * 1024)
    ?(stripe = 4096) ?(slow_ms = 0.) ?(slowlog_limit = 128) ~store ~sock () =
  {
    (Server.default_config ~store_path:store ~addr:(Wire.Unix_path sock)) with
    Server.max_clients;
    commit_window = window;
    staged_cap;
    fsync = false;
    stripe;
    slow_ms;
    slowlog_limit;
  }

let with_server ?max_clients ?window ?staged_cap ?stripe ?slow_ms ?slowlog_limit f =
  let store = temp_path ".tmlstore" in
  let sock = temp_path ".sock" in
  let t =
    Server.start
      (config ?max_clients ?window ?staged_cap ?stripe ?slow_ms ?slowlog_limit ~store ~sock ())
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      if Sys.file_exists store then Sys.remove store;
      if Sys.file_exists (store ^ ".slowlog") then Sys.remove (store ^ ".slowlog");
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f (Wire.Unix_path sock) t)

let eval_ok c src =
  match Client.eval c src with
  | Ok out -> out
  | Error msg -> Alcotest.failf "eval %S failed: %s" src msg

(* (epoch, objects, group) *)
let commit_ok c =
  match Client.commit c with
  | Ok (Client.Committed { epoch; objects; group }) -> (epoch, objects, group)
  | Ok (Client.Conflicted { oid }) -> Alcotest.failf "unexpected conflict on oid %d" oid
  | Error msg -> Alcotest.failf "commit failed: %s" msg

(* "- : 3 (in 6 instructions)" -> 3 *)
let int_result out =
  try Scanf.sscanf out "- : %d" (fun v -> v) with
  | Scanf.Scan_failure _ | Failure _ | End_of_file ->
    Alcotest.failf "expected an integer result, got %S" out

(* --- snapshot isolation -------------------------------------------- *)

let test_snapshot_isolation () =
  with_server (fun addr _t ->
      let setup = Client.connect addr in
      ignore (eval_ok setup "let r = relation(tuple(1, 10), tuple(2, 20))");
      ignore (commit_ok setup);
      Client.close setup;
      let reader = Client.connect addr in
      let epoch0 = Client.epoch reader in
      check tint "reader sees the seeded relation" 2 (int_result (eval_ok reader "count(r)"));
      let writer = Client.connect addr in
      ignore (eval_ok writer "do insert(r, tuple(3, 30)) end");
      let writer_epoch, _, _ = commit_ok writer in
      check tbool "writer advanced the epoch" true (writer_epoch > epoch0);
      (* the reader is pinned at its connect epoch: the writer's commit
         must stay invisible no matter how often it re-reads *)
      check tint "pinned reader still sees 2 rows" 2 (int_result (eval_ok reader "count(r)"));
      check tint "pinned epoch unchanged" epoch0 (Client.epoch reader);
      (* its own commit is a transaction boundary: the pin moves forward
         and the writer's row appears *)
      (* a commit is the transaction boundary: it may seal the reader's
         own expression thunks (as tmlsh :commit does), but must never
         touch [r] — and it moves the pin to the latest epoch *)
      let reader_epoch, _, _ = commit_ok reader in
      check tbool "reader's commit reached the writer's epoch" true
        (reader_epoch >= writer_epoch);
      check tint "reader now sees 3 rows" 3 (int_result (eval_ok reader "count(r)"));
      Client.close reader;
      Client.close writer)

(* --- group commit --------------------------------------------------- *)

let test_group_commit_amortization () =
  (* a generous window so every client's commit lands in the same group:
     N commits, one (logical) fsync *)
  with_server ~window:0.15 (fun addr _t ->
      let n = 16 in
      let rounds = if soak then 8 else 1 in
      let setup = Client.connect addr in
      for k = 0 to n - 1 do
        ignore (eval_ok setup (Printf.sprintf "let r%d = relation(tuple(0, %d))" k k))
      done;
      ignore (commit_ok setup);
      Client.close setup;
      let commits0 = Metrics.counter_value (Metrics.counter "server.commits") in
      let groups0 = Metrics.counter_value (Metrics.counter "server.group_commits") in
      let clients = Array.init n (fun _ -> Client.connect addr) in
      for round = 1 to rounds do
        Array.iteri
          (fun k c ->
            ignore (eval_ok c (Printf.sprintf "do insert(r%d, tuple(%d, %d)) end" k round k)))
          clients;
        (* everyone commits at once; each write is disjoint, so every
           request must win its group *)
        let results = Array.make n None in
        let threads =
          Array.mapi (fun i c -> Thread.create (fun () -> results.(i) <- Some (Client.commit c)) ()) clients
        in
        Array.iter Thread.join threads;
        let groups =
          Array.map
            (function
              | Some (Ok (Client.Committed { group; _ })) -> group
              | Some (Ok (Client.Conflicted { oid })) ->
                Alcotest.failf "disjoint commit conflicted on oid %d" oid
              | Some (Error msg) -> Alcotest.failf "commit failed: %s" msg
              | None -> Alcotest.fail "commit thread died")
            results
        in
        check tbool "some group batched at least half the clients" true
          (Array.exists (fun g -> g >= n / 2) groups)
      done;
      Array.iter Client.close clients;
      let commits = Metrics.counter_value (Metrics.counter "server.commits") - commits0 in
      let groups = Metrics.counter_value (Metrics.counter "server.group_commits") - groups0 in
      check tint "every client commit sealed" (n * rounds) commits;
      check tbool "measurably fewer seals than commits" true (groups * 2 <= commits);
      (* the ratio the Stat frame reports *)
      let probe = Client.connect addr in
      let json = Client.stats probe in
      Client.close probe;
      check tbool "stats report fsync_amortization" true
        (contains ~needle:"\"fsync_amortization\":" json))

(* --- conflicts ------------------------------------------------------- *)

let test_first_committer_wins () =
  with_server (fun addr _t ->
      let setup = Client.connect addr in
      ignore (eval_ok setup "let r = relation(tuple(1, 10))");
      ignore (commit_ok setup);
      Client.close setup;
      let a = Client.connect addr in
      let b = Client.connect addr in
      ignore (eval_ok a "do insert(r, tuple(2, 20)) end");
      ignore (eval_ok b "do insert(r, tuple(3, 30)) end");
      ignore (commit_ok a);
      (match Client.commit b with
      | Ok (Client.Conflicted _) -> ()
      | Ok (Client.Committed _) -> Alcotest.fail "stale writer must conflict"
      | Error msg -> Alcotest.failf "commit failed: %s" msg);
      (* first committer's row is in, the loser's is not *)
      let probe = Client.connect addr in
      check tint "only the winner's insert landed" 2 (int_result (eval_ok probe "count(r)"));
      Client.close probe;
      Client.close a;
      Client.close b)

let test_conflict_within_one_group () =
  with_server ~window:0.15 (fun addr _t ->
      let setup = Client.connect addr in
      ignore (eval_ok setup "let r = relation(tuple(1, 10))");
      ignore (commit_ok setup);
      Client.close setup;
      let a = Client.connect addr in
      let b = Client.connect addr in
      ignore (eval_ok a "do insert(r, tuple(2, 20)) end");
      ignore (eval_ok b "do insert(r, tuple(3, 30)) end");
      let ra = ref None and rb = ref None in
      let ta = Thread.create (fun () -> ra := Some (Client.commit a)) () in
      let tb = Thread.create (fun () -> rb := Some (Client.commit b)) () in
      Thread.join ta;
      Thread.join tb;
      let won r =
        match r with
        | Some (Ok (Client.Committed _)) -> true
        | Some (Ok (Client.Conflicted _)) -> false
        | _ -> Alcotest.fail "commit errored"
      in
      check tbool "exactly one of two same-OID writers wins" true (won !ra <> won !rb);
      Client.close a;
      Client.close b)

(* --- admission control and backpressure ------------------------------ *)

let test_busy_admission () =
  with_server ~max_clients:1 (fun addr _t ->
      let a = Client.connect addr in
      (match Client.connect addr with
      | (_ : Client.t) -> Alcotest.fail "second client must be shed"
      | exception Client.Client_error msg ->
        check tbool "shed with a busy reply" true
          (contains ~needle:"busy" (String.lowercase_ascii msg)));
      Client.close a;
      (* the slot frees once the session is gone *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec retry () =
        match Client.connect addr with
        | c -> Client.close c
        | exception Client.Client_error _ when Unix.gettimeofday () < deadline ->
          Thread.delay 0.05;
          retry ()
      in
      retry ())

let test_staged_cap () =
  with_server ~staged_cap:64 (fun addr _t ->
      let c = Client.connect addr in
      ignore (eval_ok c "let big = relation(tuple(1, 10), tuple(2, 20), tuple(3, 30))");
      (match Client.eval c "1 + 1" with
      | Error msg ->
        check tbool "eval past the cap is shed" true
          (String.length msg >= 5 && String.sub msg 0 5 = "busy:")
      | Ok _ -> Alcotest.fail "eval past the staged cap must be refused");
      (* commit is always allowed: it is how the session gets back under *)
      ignore (commit_ok c);
      ignore (eval_ok c "1 + 1");
      Client.close c)

(* --- restart and shutdown ------------------------------------------- *)

let test_restart_recovers () =
  let store = temp_path ".tmlstore" in
  let sock = temp_path ".sock" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store then Sys.remove store;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let t = Server.start (config ~store ~sock ()) in
      let c = Client.connect (Wire.Unix_path sock) in
      ignore (eval_ok c "let keep = relation(tuple(7, 70))");
      ignore (commit_ok c);
      Client.close c;
      Server.stop t;
      Server.stop t;
      (* idempotent *)
      let t2 = Server.start (config ~store ~sock ()) in
      let c2 = Client.connect (Wire.Unix_path sock) in
      check tint "restarted server serves the committed state" 1
        (int_result (eval_ok c2 "count(keep)"));
      Client.close c2;
      Server.stop t2)

let test_shutdown_wakes_clients () =
  let store = temp_path ".tmlstore" in
  let sock = temp_path ".sock" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store then Sys.remove store;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let t = Server.start (config ~store ~sock ()) in
      let c = Client.connect (Wire.Unix_path sock) in
      ignore (eval_ok c "1 + 1");
      Server.stop t;
      match Client.eval c "2 + 2" with
      | Ok _ -> Alcotest.fail "eval must fail after shutdown"
      | Error _ -> ()
      | exception Client.Client_error _ -> ()
      | exception Wire.Wire_error _ -> ()
      | exception Unix.Unix_error _ -> ())

(* --- code and object shipping ---------------------------------------- *)

let test_fetch_and_pull () =
  with_server (fun addr _t ->
      let c = Client.connect addr in
      ignore (eval_ok c "let double(x: Int): Int = x * 2");
      (match Client.fetch_ptml c "double" with
      | Ok ptml -> (
        match Tml_store.Ptml.decode_value ptml with
        | (_ : Tml_core.Term.value) -> ()
        | exception Tml_store.Ptml.Decode_error msg ->
          Alcotest.failf "fetched PTML does not decode: %s" msg)
      | Error msg -> Alcotest.failf "fetch failed: %s" msg);
      (match Client.pull_object c 0 with
      | Ok payload -> check tbool "pulled a sealed object record" true (String.length payload > 0)
      | Error msg -> Alcotest.failf "pull failed: %s" msg);
      Client.close c)

(* --- wire codec ------------------------------------------------------ *)

let test_wire_roundtrip () =
  let reqs =
    [
      Wire.Hello { version = 1; client = "t" };
      Wire.Eval "count(r)";
      Wire.Commit;
      Wire.Stat;
      Wire.Explain "f";
      Wire.Fetch "f";
      Wire.Pull 42;
      Wire.Slowlog { json = true };
      Wire.Slowlog { json = false };
      Wire.Prom;
      Wire.Bye;
    ]
  in
  List.iter
    (fun req ->
      check tbool "req round trip" true (Wire.decode_req (Wire.encode_req req) = (req, None)))
    reqs;
  let resps =
    [
      Wire.Hello_ok { session = 3; epoch = 9; server = "tmld" };
      Wire.Result "- : 42\n";
      Wire.Committed { epoch = 4; objects = 7; group = 3 };
      Wire.Conflict { oid = 12 };
      Wire.Busy "b";
      Wire.Error "e";
      Wire.Stats "{}";
      Wire.Payload { kind = 1; data = "\x00\xffbin" };
      Wire.Bye_ok;
    ]
  in
  List.iter
    (fun resp ->
      check tbool "resp round trip" true (Wire.decode_resp (Wire.encode_resp resp) = resp))
    resps;
  match Wire.decode_req "\xee" with
  | (_ : Wire.req * Wire.trace_ctx option) -> Alcotest.fail "unknown tag must be rejected"
  | exception Wire.Wire_error _ -> ()

(* --- trace context --------------------------------------------------- *)

let test_trace_ctx_roundtrip () =
  let tc = { Wire.tc_id = 0x7abc123; tc_span = 42 } in
  List.iter
    (fun req ->
      check tbool "trace trailer round trips" true
        (Wire.decode_req (Wire.encode_req ~trace:tc req) = (req, Some tc)))
    [ Wire.Eval "count(r)"; Wire.Commit; Wire.Pull 9; Wire.Slowlog { json = false } ];
  (* an old client sends no trailer: the request must decode with no
     trace, not fail — version tolerance both ways *)
  check tbool "absent trailer decodes as None" true
    (Wire.decode_req (Wire.encode_req (Wire.Eval "1 + 1")) = (Wire.Eval "1 + 1", None));
  (* a future trailer tag after the request body is ignored, not fatal *)
  let framed = Wire.encode_req Wire.Commit ^ "\x5awhatever" in
  (match Wire.decode_req framed with
  | Wire.Commit, None -> ()
  | _ -> Alcotest.fail "unknown trailer must be tolerated");
  (* ~trace:false clients advertise no id *)
  with_server (fun addr _t ->
      let c = Client.connect ~trace:false addr in
      ignore (eval_ok c "1 + 1");
      check tint "no trace id without injection" 0 (Client.last_trace_id c);
      Client.close c;
      let traced = Client.connect addr in
      ignore (eval_ok traced "2 + 2");
      check tbool "traced client advertises an id" true (Client.last_trace_id traced > 0);
      Client.close traced)

(* --- slow-query log -------------------------------------------------- *)

let test_slowlog_over_wire () =
  (* a threshold of one nanosecond: every request is "slow" *)
  with_server ~slow_ms:0.000001 (fun addr t ->
      let c = Client.connect addr in
      ignore (eval_ok c "let r = relation(tuple(1, 10), tuple(2, 20))");
      ignore (eval_ok c "count(r)");
      let log = Server.slowlog t in
      check tbool "entries were captured" true (Tml_obs.Slowlog.length log >= 2);
      let entry =
        List.find
          (fun e -> contains ~needle:"count(r)" e.Tml_obs.Slowlog.sl_source)
          (Tml_obs.Slowlog.entries log)
      in
      check tbool "entry carries the request's trace id" true
        (entry.Tml_obs.Slowlog.sl_trace = Client.last_trace_id c);
      check tbool "entry counted vm steps" true (entry.Tml_obs.Slowlog.sl_steps > 0);
      (* the wire surfaces: text names the source, JSON parses the shape *)
      let text = Client.slowlog c in
      check tbool "text rendering names the query" true (contains ~needle:"count(r)" text);
      let json = Client.slowlog ~json:true c in
      check tbool "json rendering has entries" true (contains ~needle:"\"entries\":" json);
      check tbool "json rendering names the query" true (contains ~needle:"count(r)" json);
      (* the eval-lock histograms decomposing request latency filled up *)
      check tbool "eval_lock.wait_s observed" true
        (Metrics.histogram_count (Metrics.histogram "eval_lock.wait_s") > 0);
      check tbool "eval_lock.hold_s observed" true
        (Metrics.histogram_count (Metrics.histogram "eval_lock.hold_s") > 0);
      Client.close c)

let test_slowlog_survives_restart () =
  let store = temp_path ".tmlstore" in
  let sock = temp_path ".sock" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store then Sys.remove store;
      if Sys.file_exists (store ^ ".slowlog") then Sys.remove (store ^ ".slowlog");
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let t = Server.start (config ~slow_ms:0.000001 ~store ~sock ()) in
      let c = Client.connect (Wire.Unix_path sock) in
      ignore (eval_ok c "let r = relation(tuple(7, 70))");
      Client.close c;
      Server.stop t;
      (* a fresh process (new server value) reloads the sidecar ring *)
      let t2 = Server.start (config ~slow_ms:0.000001 ~store ~sock ()) in
      let reloaded = Server.slowlog t2 in
      check tbool "slow log survived the restart" true (Tml_obs.Slowlog.length reloaded >= 1);
      check tbool "reloaded entry names the query" true
        (List.exists
           (fun e -> contains ~needle:"relation(tuple(7, 70))" e.Tml_obs.Slowlog.sl_source)
           (Tml_obs.Slowlog.entries reloaded));
      Server.stop t2)

(* --- request spans ---------------------------------------------------- *)

let test_commit_spans_carry_group_id () =
  let module Trace = Tml_obs.Trace in
  let sink, drain = Trace.memory_sink () in
  let id = Trace.add_sink sink in
  Trace.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Trace.enabled := false;
      Trace.remove_sink id)
    (fun () ->
      with_server (fun addr _t ->
          let c = Client.connect addr in
          ignore (eval_ok c "let r = relation(tuple(1, 10))");
          ignore (commit_ok c);
          let trace_id = Client.last_trace_id c in
          Client.close c;
          let events = drain () in
          let arg_int name ev =
            match List.assoc_opt name ev.Trace.ev_args with
            | Some (Trace.Int v) -> Some v
            | _ -> None
          in
          (* the fsync group span is tagged with its group id *)
          let group_gid =
            List.find_map
              (fun ev ->
                if ev.Trace.ev_name = "commit.group" && ev.Trace.ev_ph = Trace.B then
                  arg_int "group" ev
                else None)
              events
          in
          (match group_gid with
          | Some gid -> check tbool "group span has a positive gid" true (gid > 0)
          | None -> Alcotest.fail "no commit.group span with a group id");
          (* the sealed instant joins the request's trace id to that gid *)
          let sealed =
            List.find_opt
              (fun ev ->
                ev.Trace.ev_name = "commit.sealed"
                && arg_int "trace" ev = Some trace_id
                && arg_int "group" ev = group_gid)
              events
          in
          check tbool "commit.sealed joins trace id to group id" true (sealed <> None);
          (* the server wrapped the request in a span naming the phase *)
          check tbool "server.commit span emitted" true
            (List.exists
               (fun ev -> ev.Trace.ev_name = "server.commit" && ev.Trace.ev_ph = Trace.B)
               events);
          (* the server stamps real thread ids: the connection handler
             and the committer are different threads, so their spans
             must land on different Chrome tracks *)
          let tids = List.sort_uniq compare (List.map (fun ev -> ev.Trace.ev_tid) events) in
          check tbool "spans span multiple threads" true (List.length tids >= 2)))

let () =
  (* a server tearing down a connection mid-write must surface as EPIPE,
     not kill the whole test binary *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Tml_vm.Runtime.install ();
  Tml_query.Qprims.install ();
  Alcotest.run "tml_server"
    [
      ( "wire",
        [
          Alcotest.test_case "message codec round trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "trace-context trailer" `Quick test_trace_ctx_roundtrip;
        ] );
      ( "observability",
        [
          Alcotest.test_case "slow-query log over the wire" `Quick test_slowlog_over_wire;
          Alcotest.test_case "slow-query log survives restart" `Quick
            test_slowlog_survives_restart;
          Alcotest.test_case "commit spans carry fsync group ids" `Quick
            test_commit_spans_carry_group_id;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "snapshot isolation across epochs" `Quick test_snapshot_isolation;
          Alcotest.test_case "first committer wins" `Quick test_first_committer_wins;
          Alcotest.test_case "conflict within one group" `Quick test_conflict_within_one_group;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "fsync amortization across 16 clients" `Quick
            test_group_commit_amortization;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "admission control sheds load" `Quick test_busy_admission;
          Alcotest.test_case "staged-byte cap" `Quick test_staged_cap;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "restart recovers committed state" `Quick test_restart_recovers;
          Alcotest.test_case "shutdown wakes blocked clients" `Quick test_shutdown_wakes_clients;
          Alcotest.test_case "fetch PTML / pull objects" `Quick test_fetch_and_pull;
        ] );
    ]
