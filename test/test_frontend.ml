(* Tests for the TL front end: lexer, parser, type checker, CPS lowering,
   linker, and end-to-end program behaviour on both engines. *)

open Tml_core
open Tml_vm
open Tml_frontend

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

(* run a program's main and return (outcome, output) *)
let run ?(engine = `Machine) ?options src =
  let program = Link.load ?options src in
  let outcome, _ = Link.run_main program ~engine () in
  outcome, Link.output program

let expect_output ?engine ?options src expected =
  match run ?engine ?options src with
  | Eval.Done _, out -> check tstring src expected out
  | o, _ -> Alcotest.failf "%s: %a" src Eval.pp_outcome o

let expect_int ?engine src expected =
  expect_output ?engine
    (Printf.sprintf "do io.print_int(%s) end" src)
    (string_of_int expected)

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "let x := 1.5e2 'a' \"s\\n\" == <= -- comment\n m.f" in
  let kinds = List.map fst toks in
  check tbool "keyword" true (List.mem (Lexer.KW "let") kinds);
  check tbool "assign" true (List.mem Lexer.ASSIGN kinds);
  check tbool "real" true (List.mem (Lexer.REAL 150.0) kinds);
  check tbool "char" true (List.mem (Lexer.CHAR 'a') kinds);
  check tbool "string escape" true (List.mem (Lexer.STRING "s\n") kinds);
  check tbool "eqeq" true (List.mem (Lexer.OP "==") kinds);
  check tbool "le" true (List.mem (Lexer.OP "<=") kinds);
  check tbool "comment skipped" false
    (List.exists
       (function
         | Lexer.ID "comment" -> true
         | _ -> false)
       kinds);
  check tbool "dot" true (List.mem Lexer.DOT kinds)

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ (Lexer.ID "a", p1); (Lexer.ID "b", p2); (Lexer.EOF, _) ] ->
    check tint "line 1" 1 p1.Ast.line;
    check tint "line 2" 2 p2.Ast.line;
    check tint "col 3" 3 p2.Ast.col
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_errors () =
  List.iter
    (fun src ->
      match Lexer.tokenize src with
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected lexical error for %S" src)
    [ "\"unterminated"; "'x"; "@" ]

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parser_precedence () =
  (* 1 + 2 * 3 = 7, not 9 *)
  expect_int "1 + 2 * 3" 7;
  (* (1 + 2) * 3 *)
  expect_int "(1 + 2) * 3" 9;
  (* left associativity of subtraction *)
  expect_int "10 - 3 - 2" 5;
  (* relational vs boolean precedence: 1 < 2 && 3 < 2 is false *)
  expect_output "do if 1 < 2 && 3 < 2 then io.print_int(1) else io.print_int(0) end end" "0";
  (* unary minus *)
  expect_int "-3 + 10" 7

let test_parser_errors () =
  List.iter
    (fun src ->
      match Parser.parse_program src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" src)
    [
      "let f( = 1";
      "do 1 +";
      "do if true then 1 end";  (* missing 'end' for do *)
      "module m";
      "do x[1 end";
      "let f(x Int): Int = x";
    ]

let test_parser_shapes () =
  let p = Parser.parse_program "module m let f(x: Int): Int = x end let y = 3 do f(1) end" in
  match p with
  | [ Ast.Imodule ("m", [ Ast.Dfun _ ]); Ast.Idef (Ast.Dval _); Ast.Ido _ ] -> ()
  | _ -> Alcotest.fail "unexpected program shape"

(* ------------------------------------------------------------------ *)
(* Type checker                                                         *)
(* ------------------------------------------------------------------ *)

let expect_type_error src =
  match Typecheck.check_with_prelude ~prelude:(Stdlib_tl.program ()) (Parser.parse_program src) with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.failf "expected type error for %S" src

let test_type_errors () =
  List.iter expect_type_error
    [
      "do undefined_variable end";
      "do 1 + true end";
      "do 1.5 + 1 end";
      "let f(x: Int): Int = x do f(true) end";
      "let f(x: Int): Int = x do f(1, 2) end";
      "do if 1 then 2 else 3 end end";
      "do if true then 1 else 'c' end end";
      (* assignment to immutable *)
      "do let x = 1; x := 2; x end";
      (* Any reserved for the standard library *)
      "let f(x: Any): Int = 1 do f(1) end";
      (* prim without annotation in user code *)
      "do prim \"+\" (1, 2) end";
      (* tuple field out of range *)
      "do let t = tuple(1, 2); io.print_int(t.3) end";
      (* select target must be a tuple *)
      "let r = relation(tuple(1)) do count(select 5 from x in r where true end) end";
      (* calling a non-function *)
      "do let x = 1; x(2) end";
      (* comparing functions *)
      "let f(x: Int): Int = x let g(x: Int): Int = x do if f == g then 1 else 2 end end";
      (* wrong module member *)
      "do io.print_everything(1) end";
      (* raise payload must be a string *)
      "do raise 42 end";
    ]

let test_type_accepts () =
  (* constructs that must type-check *)
  let srcs =
    [
      "do nil end";
      "let f(g: Fun(Int): Int, x: Int): Int = g(x) do f(fn(y: Int): Int => y + 1, 1) end";
      "do var x := 1; x := x + 1; io.print_int(x) end";
      "do let a = array(3, 0.0); a[0] := 1.5; io.print_real(a[0]) end";
      "do let t = tuple(1, 'c', true); io.print_char(t.2) end";
      "let r = relation(tuple(1, 2)) do io.print_int(count(r)) end";
    ]
  in
  List.iter
    (fun src ->
      ignore
        (Typecheck.check_with_prelude ~prelude:(Stdlib_tl.program ())
           (Parser.parse_program src)))
    srcs

(* ------------------------------------------------------------------ *)
(* Lowering                                                             *)
(* ------------------------------------------------------------------ *)

let prims_of_compiled (compiled : Lower.compiled) =
  List.concat_map
    (fun (d : Lower.compiled_def) ->
      match d.Lower.c_tml with
      | Term.Abs a -> Term.prims_used a.Term.body
      | _ -> [])
    compiled.Lower.c_defs
  @
  match compiled.Lower.c_main with
  | Some (Term.Abs a) -> Term.prims_used a.Term.body
  | _ -> []

let test_lowering_modes () =
  let src = "let f(a: Int, b: Int): Int = a + b do io.print_int(f(1, 2)) end" in
  (* library mode: user code calls intlib, no '+' primitive in user defs *)
  let lib = Link.compile src in
  let f_lib = List.find (fun d -> d.Lower.c_name = "f") lib.Lower.c_defs in
  (match f_lib.Lower.c_tml with
  | Term.Abs a ->
    check tbool "library mode has no + in user code" false
      (List.mem "+" (Term.prims_used a.Term.body));
    check tbool "library mode references intlib.add" true
      (Ident.Set.exists
         (fun id -> id.Ident.name = "intlib.add")
         (Term.free_vars_value f_lib.Lower.c_tml))
  | _ -> Alcotest.fail "expected abs");
  (* direct mode: '+' emitted inline *)
  let direct =
    Link.compile ~options:{ Link.default_options with Link.mode = Lower.Direct } src
  in
  let f_dir = List.find (fun d -> d.Lower.c_name = "f") direct.Lower.c_defs in
  match f_dir.Lower.c_tml with
  | Term.Abs a -> check tbool "direct mode uses +" true (List.mem "+" (Term.prims_used a.Term.body))
  | _ -> Alcotest.fail "expected abs"

let test_lowering_queries () =
  let src =
    "let r = relation(tuple(1, 2)) do count(select tuple(x.2) from x in r where x.1 == 1 \
     end) end"
  in
  let compiled = Link.compile src in
  let prims = prims_of_compiled compiled in
  List.iter
    (fun p -> check tbool ("emits " ^ p) true (List.mem p prims))
    [ "select"; "project"; "count"; "relation"; "tuple" ]

let test_lowering_wellformed () =
  (* every definition the front end produces is well-formed TML *)
  let src =
    {|
module helpers
  let twice(f: Fun(Int): Int, x: Int): Int = f(f(x))
end
let r = relation(tuple(1, 10), tuple(2, 20))
let go(n: Int): Int =
  var acc := 0;
  for i = 1 upto n do
    acc := acc + helpers.twice(fn(y: Int): Int => y + i, i)
  end;
  while acc > 100 do acc := acc - 7 end;
  try
    if exists x in r where x.1 == acc end then raise "found" else acc end
  handle msg => 0 - 1 end
do io.print_int(go(5)) end
|}
  in
  let compiled = Link.compile src in
  List.iter
    (fun (d : Lower.compiled_def) ->
      match Wf.check_value d.Lower.c_tml with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s ill-formed: %s" d.Lower.c_name
          (String.concat "; " (List.map (fun e -> e.Wf.message) es)))
    compiled.Lower.c_defs

(* ------------------------------------------------------------------ *)
(* End-to-end behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let test_constructs () =
  expect_int "(fn(x: Int): Int => x * 2)(21)" 42;
  expect_output "do io.print_str(\"a\"); io.print_str(\"b\") end" "ab";
  expect_output "do for i = 3 downto 1 do io.print_int(i) end end" "321";
  expect_output "do var i := 0; while i < 3 do io.print_int(i); i := i + 1 end end" "012";
  expect_output "do if 2 > 1 then io.print_str(\"yes\") end end" "yes";
  expect_int "ord('a') + 1" 98;
  expect_output "do io.print_char(chr(66)) end" "B";
  expect_int "trunc(real(7) / 2.0)" 3;
  expect_output "do io.print_real(1.5 + 2.25) end" "3.75";
  expect_int "intlib.max(3, 9)" 9;
  expect_int "intlib.abs(0 - 5)" 5;
  expect_output "do io.print_real(mathlib.sqrt(2.25)) end" "1.5"

let test_strings_and_tuples () =
  expect_output "do let t = tuple(1, \"mid\", 'z'); io.print_str(t.2) end" "mid";
  expect_int "tuple(40, 2).1 + tuple(40, 2).2" 42;
  (* '+' concatenates strings, in library and direct mode *)
  expect_output "do io.print_str(\"ab\" + \"cd\") end" "abcd";
  expect_output ~options:{ Link.default_options with Link.mode = Lower.Direct }
    "do io.print_str(\"ab\" + \"cd\") end" "abcd";
  expect_int "strlib.length(\"hello\" + \"!\")" 6;
  expect_output "do io.print_char(strlib.charat(\"xyz\", 2)) end" "z";
  expect_output "do io.print_str(strlib.sub(\"persistent\", 0, 7)) end" "persist";
  expect_int "strlib.toint(strlib.fromint(123)) + 1" 124;
  expect_int "try strlib.toint(\"oops\") handle m => 0 - 1 end" (-1);
  expect_int "strlib.compare(\"abc\", \"abd\")" (-1);
  expect_output "do if strlib.contains_char(\"query\", 'q') then io.print_str(\"y\") end end" "y"

let test_relation_builtins () =
  expect_int
    "count(union(relation(tuple(1), tuple(2)), relation(tuple(2), tuple(3))))" 4;
  expect_int
    "count(distinct(union(relation(tuple(1), tuple(2)), relation(tuple(2), tuple(3)))))" 3;
  expect_int "count(inter(relation(tuple(1), tuple(2)), relation(tuple(2))))" 1;
  expect_int "count(diff(relation(tuple(1), tuple(2)), relation(tuple(2))))" 1;
  (* behaviour is stable under dynamic optimization *)
  let src =
    "let a = relation(tuple(1), tuple(2), tuple(2))\n\
     let b = relation(tuple(2), tuple(9))\n\
     do io.print_int(count(distinct(union(a, b)))) end"
  in
  let program = Link.load src in
  Tml_reflect.Reflect.optimize_all program.Link.ctx (Link.all_function_oids program);
  match Link.run_main program ~engine:`Machine () with
  | Eval.Done _, _ -> check tstring "distinct(union)" "3" (Link.output program)
  | o, _ -> Alcotest.failf "relation builtins: %a" Eval.pp_outcome o

let test_exceptions_e2e () =
  expect_output
    "let f(x: Int): Int = if x < 0 then raise \"neg\" else x end do io.print_int(try f(0 - \
     1) handle m => 99 end) end"
    "99";
  (* uncaught exception surfaces as Raised *)
  (match run "do raise \"kaboom\" end" with
  | Eval.Raised (Value.Str "kaboom"), _ -> ()
  | o, _ -> Alcotest.failf "expected Raised, got %a" Eval.pp_outcome o);
  (* division by zero is catchable *)
  expect_output "do io.print_int(try 1 / 0 handle m => 0 - 7 end) end" "-7";
  (* handler sees the message *)
  expect_output "do io.print_str(try raise \"msg\" handle m => m end) end" "msg"

let test_mutual_recursion_e2e () =
  expect_output
    {|
let even(n: Int): Bool = if n == 0 then true else odd(n - 1) end
let odd(n: Int): Bool = if n == 0 then false else even(n - 1) end
do
  if even(10) then io.print_str("even") else io.print_str("odd") end
end
|}
    "even"

let test_value_defs_link_time () =
  expect_output
    {|
let table = array(4, 0)
let limit = 2 * 5
do
  table[1] := limit;
  io.print_int(table[1] + size(table))
end
|}
    "14"

let test_higher_order_e2e () =
  expect_output
    {|
let compose(f: Fun(Int): Int, g: Fun(Int): Int, x: Int): Int = f(g(x))
let inc(x: Int): Int = x + 1
do
  io.print_int(compose(inc, fn(y: Int): Int => y * 10, 4))
end
|}
    "41"

let test_engines_agree_e2e () =
  let src =
    {|
let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end
do io.print_int(fib(12)) end
|}
  in
  let o1, out1 = run ~engine:`Machine src in
  let o2, out2 = run ~engine:`Tree src in
  check tbool "both done" true
    (match o1, o2 with
    | Eval.Done _, Eval.Done _ -> true
    | _ -> false);
  check tstring "same output" out1 out2;
  check tstring "fib 12" "144" out1

let test_static_opt_preserves () =
  let src =
    {|
let f(a: Int): Int =
  let b = a * 2;
  let c = b + 3;
  c * c
do io.print_int(f(5)) end
|}
  in
  let expected = "169" in
  expect_output src expected;
  expect_output ~options:{ Link.default_options with Link.static_opt = Some Optimizer.o2 } src
    expected;
  expect_output ~options:{ Link.default_options with Link.mode = Lower.Direct } src expected

let test_shadowing () =
  (* inner let shadows outer *)
  expect_int "(fn(x: Int): Int => let x = x + 1; x * 2)(10)" 22;
  (* a user definition shadows a builtin name *)
  expect_output
    "let count(n: Int): Int = n + 1 do io.print_int(count(5)) end"
    "6"

let test_triggers_e2e () =
  (* a stored trigger written in TL maintains a running total *)
  expect_output
    {|
let accounts = relation(tuple(1, 100))
let total = array(1, 100)

let on_deposit(a: Tuple(Int, Int)): Unit =
  total[0] := total[0] + a.2

do
  ontrigger(accounts, on_deposit);
  insert(accounts, tuple(2, 250));
  insert(accounts, tuple(3, 50));
  io.print_int(total[0]);
  io.print_str(" ");
  io.print_int(count(accounts))
end
|}
    "400 3";
  (* a trigger that vetoes by raising: catchable at the insert site *)
  expect_output
    {|
let accounts = relation(tuple(1, 100))
let no_negative(a: Tuple(Int, Int)): Unit =
  if a.2 < 0 then raise "negative deposit" end
do
  ontrigger(accounts, no_negative);
  let note = try insert(accounts, tuple(2, -5)); "accepted" handle m => m end;
  io.print_str(note)
end
|}
    "negative deposit";
  (* triggers survive dynamic optimization *)
  let src =
    {|
let accounts = relation(tuple(1, 100))
let total = array(1, 100)
let on_deposit(a: Tuple(Int, Int)): Unit = total[0] := total[0] + a.2
do
  ontrigger(accounts, on_deposit);
  insert(accounts, tuple(2, 11));
  io.print_int(total[0])
end
|}
  in
  let program = Link.load src in
  Tml_reflect.Reflect.optimize_all program.Link.ctx (Link.all_function_oids program);
  match Link.run_main program ~engine:`Machine () with
  | Eval.Done _, _ -> check tstring "trigger under dynamic opt" "111" (Link.output program)
  | o, _ -> Alcotest.failf "trigger e2e: %a" Eval.pp_outcome o

let test_run_function_api () =
  let program = Link.load "let double(x: Int): Int = x * 2 do nil end" in
  match Link.run_function program "double" [ Value.Int 21 ] ~engine:`Machine with
  | Eval.Done (Value.Int 42), _ -> ()
  | o, _ -> Alcotest.failf "run_function failed: %a" Eval.pp_outcome o

let () =
  Runtime.install ();
  Alcotest.run "tml_frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "program shapes" `Quick test_parser_shapes;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "rejects" `Quick test_type_errors;
          Alcotest.test_case "accepts" `Quick test_type_accepts;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "library vs direct mode" `Quick test_lowering_modes;
          Alcotest.test_case "queries" `Quick test_lowering_queries;
          Alcotest.test_case "always well-formed" `Quick test_lowering_wellformed;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "constructs" `Quick test_constructs;
          Alcotest.test_case "strings and tuples" `Quick test_strings_and_tuples;
          Alcotest.test_case "relation builtins" `Quick test_relation_builtins;
          Alcotest.test_case "exceptions" `Quick test_exceptions_e2e;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_e2e;
          Alcotest.test_case "value definitions at link time" `Quick test_value_defs_link_time;
          Alcotest.test_case "higher order" `Quick test_higher_order_e2e;
          Alcotest.test_case "engines agree" `Quick test_engines_agree_e2e;
          Alcotest.test_case "optimization preserves behaviour" `Quick
            test_static_opt_preserves;
          Alcotest.test_case "shadowing" `Quick test_shadowing;
          Alcotest.test_case "triggers" `Quick test_triggers_e2e;
          Alcotest.test_case "run_function" `Quick test_run_function_api;
        ] );
    ]
