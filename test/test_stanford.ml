(* Golden tests for the Stanford suite (section 6 workload).

   The fast benchmarks are checked at every optimization level against the
   classic known results (8660 permutations, 4095 Hanoi moves, 92 queens
   solutions, "success 2005" for puzzle); the heavy ones run once at the
   dynamic level as `Slow tests. *)

open Tml_stanford

let check = Alcotest.check
let tstring = Alcotest.string
let tbool = Alcotest.bool

let golden =
  [
    "perm", "8660";
    "towers", "4095";
    "queens", "92";
    "intmm", "15520";
    "mm", "6037";
    "quick", "sorted 0 33696 65505";
    "bubble", "sorted 0 65505";
    "tree", "1000 33666033";
    "fft", "22143";
    "puzzle", "success 2005";
  ]

let expect name = List.assoc name golden

let run_level name level =
  let r = Suite.run name level in
  (match r.Suite.outcome with
  | Tml_vm.Eval.Done _ -> ()
  | o ->
    Alcotest.failf "%s/%s did not finish: %a" name (Suite.level_name level)
      Tml_vm.Eval.pp_outcome o);
  String.trim r.Suite.output, r.Suite.steps

(* fast benchmarks: every level must produce the golden output *)
let all_levels_case name () =
  List.iter
    (fun level ->
      let out, _ = run_level name level in
      check tstring (Printf.sprintf "%s at %s" name (Suite.level_name level)) (expect name) out)
    Suite.levels

(* the speedup claims of section 6, on a fast representative subset:
   static optimization alone is a small effect; dynamic optimization is a
   large one *)
let test_speedup_shape () =
  let names = [ "queens"; "intmm"; "tree" ] in
  List.iter
    (fun name ->
      let _, unopt = run_level name Suite.Unopt in
      let _, static = run_level name Suite.Static in
      let _, dynamic = run_level name Suite.Dynamic in
      let s_static = float_of_int unopt /. float_of_int static in
      let s_dynamic = float_of_int unopt /. float_of_int dynamic in
      check tbool
        (Printf.sprintf "%s: static is a modest effect (%.2fx)" name s_static)
        true (s_static < 1.6);
      check tbool
        (Printf.sprintf "%s: dynamic more than doubles speed (%.2fx)" name s_dynamic)
        true (s_dynamic > 2.0))
    names

(* engines agree on a representative benchmark *)
let test_engines_agree () =
  let m = Suite.run ~engine:`Machine "towers" Suite.Unopt in
  let t = Suite.run ~engine:`Tree "towers" Suite.Unopt in
  check tstring "same output" m.Suite.output t.Suite.output

(* the heavy benchmark, once, dynamically optimized *)
let puzzle_case () =
  let out, _ = run_level "puzzle" Suite.Dynamic in
  check tstring "puzzle" (expect "puzzle") out

let test_code_size_doubles () =
  (* E3: with PTML attached to every function, total code size roughly
     doubles (the paper reports 1.2MB vs 600kB) *)
  let program = Suite.load "intmm" Suite.Unopt in
  let report = Suite.code_size program in
  let ratio =
    float_of_int (report.Suite.bytecode_bytes + report.Suite.ptml_bytes)
    /. float_of_int report.Suite.bytecode_bytes
  in
  check tbool
    (Printf.sprintf "PTML roughly doubles code size (%.2fx)" ratio)
    true
    (ratio > 1.5 && ratio < 3.5);
  check tbool "functions counted" true (report.Suite.functions > 10)

let fast_names = [ "perm"; "towers"; "queens"; "intmm"; "mm"; "tree"; "fft" ]
let slow_names = [ "quick"; "bubble" ]

let () =
  Alcotest.run "tml_stanford"
    ([
       ( "golden",
         List.map (fun name -> Alcotest.test_case name `Quick (all_levels_case name)) fast_names
         @ List.map
             (fun name -> Alcotest.test_case name `Slow (all_levels_case name))
             slow_names
         @ [ Alcotest.test_case "puzzle (dynamic only)" `Slow puzzle_case ] );
     ]
    @ [
        ( "claims",
          [
            Alcotest.test_case "speedup shape (E1/E2)" `Quick test_speedup_shape;
            Alcotest.test_case "engines agree" `Quick test_engines_agree;
            Alcotest.test_case "code size (E3)" `Quick test_code_size_doubles;
          ] );
      ])
