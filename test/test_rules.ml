(* Tests for the declarative rewrite-rule DSL (lib/rules) and its
   verification surface: the static checker over every shipped rule, the
   derived per-rule proof obligations, the observational equivalence of the
   head-indexed dispatch with the historical linear scan, and the strict
   fire-name accounting. *)

open Tml_core
open Tml_rules
open Tml_query
open Tml_check

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let shipped_rules () =
  Qopt.install ();
  Qopt.rule_descriptors @ Tml_reflect.Reflect.rule_descriptors

(* ------------------------------------------------------------------ *)
(* Static checker                                                       *)
(* ------------------------------------------------------------------ *)

let test_checker_accepts_shipped () =
  let rules = shipped_rules () in
  check tbool "have a real rule population" true (List.length rules >= 10);
  List.iter
    (fun r ->
      match Check.check r with
      | [] -> ()
      | errs ->
        Alcotest.failf "rule %s: %s" r.Dsl.name
          (String.concat "; " (List.map (fun e -> e.Check.what) errs)))
    rules

let test_checker_rejects_silent_drop () =
  match Check.check Fixtures.select_drop with
  | [] -> Alcotest.fail "unsound fixture passed the static checker"
  | errs ->
    (* the precondition-sufficiency lint must name the dropped predicate *)
    check tbool "names the silent drop" true
      (List.exists
         (fun e ->
           let what = e.Check.what in
           let has needle =
             let nl = String.length needle and wl = String.length what in
             let rec go i = i + nl <= wl && (String.sub what i nl = needle || go (i + 1)) in
             go 0
           in
           has "drop" && has "p")
         errs)

let test_checker_passes_acknowledged_drop () =
  (* the acknowledged variant is the static checker's blind spot by
     construction: only the dynamic obligation can reject it *)
  check tint "acknowledged fixture is statically clean" 0
    (List.length (Check.check Fixtures.select_drop_acknowledged))

(* ------------------------------------------------------------------ *)
(* Proof obligations                                                    *)
(* ------------------------------------------------------------------ *)

let test_obligations_prove_declarative_rules () =
  List.iter
    (fun r ->
      match Obligation.check r with
      | Obligation.Proved n -> check tbool (r.Dsl.name ^ ": proved some redexes") true (n >= 1)
      | v -> Alcotest.failf "rule %s: %a" r.Dsl.name Obligation.pp_verdict v)
    Qrewrite.declarative_rules

let test_obligation_refutes_fixture () =
  match Obligation.check Fixtures.select_drop_acknowledged with
  | Obligation.Refuted _ -> ()
  | v ->
    Alcotest.failf "unsound fixture not refuted: %a" Obligation.pp_verdict v

let test_obligation_closure_unsupported () =
  match Tml_reflect.Reflect.rule_descriptors with
  | [] -> Alcotest.fail "no reflective rule descriptors"
  | r :: _ -> (
    match Obligation.check r with
    | Obligation.Unsupported _ -> ()
    | v -> Alcotest.failf "closure rule %s: %a" r.Dsl.name Obligation.pp_verdict v)

(* ------------------------------------------------------------------ *)
(* Indexed dispatch ≡ linear scan                                       *)
(* ------------------------------------------------------------------ *)

(* Optimize one value under a rule list, capturing everything observable
   about the optimization itself: result term, derivation log, per-rule
   fire counters. *)
let optimize_obs rules v =
  Rewrite.reset_fire_counts ();
  let saved = !Tml_obs.Provenance.enabled in
  Tml_obs.Provenance.enabled := true;
  let config = Optimizer.with_rules Optimizer.o2 rules in
  let v', report =
    Fun.protect
      ~finally:(fun () -> Tml_obs.Provenance.enabled := saved)
      (fun () -> Optimizer.optimize_value ~config v)
  in
  v', report.Optimizer.prov, Rewrite.fire_counts ()

let assert_equiv what v =
  let v1, p1, f1 = optimize_obs (Index.linear Qrewrite.declarative_rules) v in
  let v2, p2, f2 = optimize_obs [ Index.compile Qrewrite.declarative_rules ] v in
  check tbool (what ^ ": same normal form") true (Term.alpha_equal_value v1 v2);
  check tbool (what ^ ": same provenance") true (Tml_obs.Provenance.equal p1 p2);
  check tbool (what ^ ": same fire counts") true (f1 = f2);
  f1

let field_pred ~field ~value =
  Printf.sprintf
    "proc(x pce%d! pcc%d!) ([] x %d cont(t%d) (== t%d %d cont() (pcc%d! true) cont() (pcc%d! \
     false)))"
    field field field field field value field field

(* Hand-written redexes where we know rules fire, so the equivalence is not
   vacuous. *)
let test_equiv_on_redexes () =
  let wrap src =
    let a = Sexp.parse_app src in
    let frees = Ident.Set.elements (Term.free_vars_app a) in
    Term.abs frees a
  in
  let merge =
    Printf.sprintf "(select %s r ce! cont(tmp) (select %s tmp ce! k!))"
      (field_pred ~field:0 ~value:1) (field_pred ~field:1 ~value:2)
  in
  let fires =
    assert_equiv "merge-select" (wrap merge)
  in
  check tbool "merge-select fired in both" true (List.mem_assoc "q.merge-select" fires);
  let const = "(select proc(x pce! pcc!) (pcc! true) r ce! cont(s) (count s k!))" in
  let fires = assert_equiv "constant-select" (wrap const) in
  check tbool "constant-select fired in both" true (List.mem_assoc "q.constant-select" fires)

let test_equiv_on_generated () =
  for seed = 0 to 39 do
    let c = Tgen.query_case_of_seed seed in
    ignore (assert_equiv (Printf.sprintf "query seed %d" seed) c.Tgen.qproc)
  done

let corpus_dir = "corpus"

let test_equiv_on_corpus () =
  let files =
    if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".corpus")
      |> List.sort compare
    else []
  in
  if files = [] then Alcotest.fail "test/corpus is empty or not wired as a test dependency";
  List.iter
    (fun file ->
      let _, case = Harness.load_entry (Filename.concat corpus_dir file) in
      let proc =
        match case with
        | Harness.Cdiff d -> d.Tgen.proc
        | Harness.Cquery q -> q.Tgen.qproc
      in
      ignore (assert_equiv file proc))
    files

(* ------------------------------------------------------------------ *)
(* Fire accounting: strict names, counters, metrics source              *)
(* ------------------------------------------------------------------ *)

let anonymous_rule : Rewrite.rule =
 fun a ->
  match a.Term.func with
  | Term.Prim "anon-test" -> (
    match a.Term.args with
    | [ k ] -> Some (Term.app k [])
    | _ -> None)
  | _ -> None

let test_strict_names () =
  let saved = !Rewrite.strict_names in
  Fun.protect
    ~finally:(fun () -> Rewrite.strict_names := saved)
    (fun () ->
      let redex () = Sexp.parse_app "(anon-test k!)" in
      (* permissive: the fire lands on the anonymous bucket *)
      Rewrite.strict_names := false;
      Rewrite.reset_fire_counts ();
      ignore (Rewrite.reduce_app ~rules:[ anonymous_rule ] (redex ()));
      check tint "anonymous fire counted under the fallback name" 1
        (try List.assoc Rewrite.anonymous_rule_name (Rewrite.fire_counts ())
         with Not_found -> 0);
      (* strict: the same fire faults *)
      Rewrite.strict_names := true;
      Alcotest.check_raises "strict mode rejects anonymous fires" Rewrite.Unnamed_rule_fire
        (fun () -> ignore (Rewrite.reduce_app ~rules:[ anonymous_rule ] (redex ())));
      (* a named wrapper satisfies strict mode *)
      Rewrite.reset_fire_counts ();
      ignore
        (Rewrite.reduce_app
           ~rules:[ Rewrite.named "t.anon-test" anonymous_rule ]
           (redex ()));
      check tint "named fire counted" 1
        (try List.assoc "t.anon-test" (Rewrite.fire_counts ()) with Not_found -> 0))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_rules_metrics_source () =
  Profile.register_metrics ();
  Rewrite.reset_fire_counts ();
  let merge =
    Printf.sprintf "(select %s r ce! cont(tmp) (select %s tmp ce! k!))"
      (field_pred ~field:0 ~value:1) (field_pred ~field:1 ~value:2)
  in
  ignore (Rewrite.reduce_app ~rules:Qopt.static_rules (Sexp.parse_app merge));
  check tbool "fire counter present" true
    (List.mem_assoc "q.merge-select" (Rewrite.fire_counts ()));
  let json = Tml_obs.Metrics.snapshot_json () in
  check tbool "metrics snapshot has a rules source" true (contains json "\"rules\"");
  check tbool "metrics snapshot attributes the fire" true (contains json "q.merge-select")

let test_registry () =
  Qopt.install ();
  let names = List.map (fun r -> r.Dsl.name) (Index.registered ()) in
  List.iter
    (fun n -> check tbool (n ^ " registered") true (List.mem n names))
    [ "q.merge-select"; "q.constant-select"; "q.index-select"; "reflect.store-fold";
      "reflect.inline-oid" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "rules"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts shipped rules" `Quick test_checker_accepts_shipped;
          Alcotest.test_case "rejects silent drop" `Quick test_checker_rejects_silent_drop;
          Alcotest.test_case "passes acknowledged drop" `Quick
            test_checker_passes_acknowledged_drop;
        ] );
      ( "obligations",
        [
          Alcotest.test_case "prove declarative rules" `Quick
            test_obligations_prove_declarative_rules;
          Alcotest.test_case "refute unsound fixture" `Quick test_obligation_refutes_fixture;
          Alcotest.test_case "closure rules unsupported" `Quick
            test_obligation_closure_unsupported;
        ] );
      ( "index",
        [
          Alcotest.test_case "equivalence on known redexes" `Quick test_equiv_on_redexes;
          Alcotest.test_case "equivalence on generated pipelines" `Quick
            test_equiv_on_generated;
          Alcotest.test_case "equivalence on the corpus" `Quick test_equiv_on_corpus;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "strict fire names" `Quick test_strict_names;
          Alcotest.test_case "rules metrics source" `Quick test_rules_metrics_source;
          Alcotest.test_case "registry population" `Quick test_registry;
        ] );
    ]
