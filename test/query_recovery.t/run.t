Crash recovery of a paged relation with a persistent secondary index.

stage1 commits a 22-row relation (4-row pages, so 5 sealed pages and a
2-row tail), with a hash index on field 1 and its stats object, then
writes a second insert batch and tears the log mid-record — simulating a
crash in the middle of the second commit.

  $ ../qrecovery.exe stage1 crash.tml
  baseline: 22 rows in 5 pages + 2 tail, lookup(1)=5
  tore the log mid-record inside the second commit

stage2 reopens the torn store.  Recovery seals the log at the baseline
commit (one truncation), and the relation, its index and its statistics
come back mutually consistent: 22 rows, the index answers the lookup
directly from its persisted object (one load, zero rebuilds), and a full
scan agrees with the indexed answer.

  $ ../qrecovery.exe stage2 crash.tml
  recovered: 22 rows, lookup(1)=5, scan(1)=5, stats count=22
  index loads=1 rebuilds=0, log truncations=1
