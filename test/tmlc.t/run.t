The tmlc command-line driver, end to end.

  $ cat > prog.tl <<'TL'
  > let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end
  > do io.print_int(fib(10)); io.newline() end
  > TL

Type checking:

  $ tmlc check prog.tl
  prog.tl: 49 definitions type-check

Running (the abstract machine's instruction counts are deterministic):

  $ tmlc run prog.tl
  55
  -- done nil, 10483 abstract instructions

Dynamic (reflective) optimization executes fewer instructions, same output:

  $ tmlc run prog.tl --dynamic
  55
  -- done nil, 4571 abstract instructions

The TML of a definition:

  $ tmlc dump prog.tl --def fib | head -5
  === fib ===
  proc(n_316 ce_317 cc_318)
    (intlib.lt_319
     n_316
     2

Store images survive a process boundary:

  $ cat > db.tl <<'TL'
  > let squares = relation(tuple(1, 1), tuple(2, 4), tuple(3, 9))
  > let lookup(n: Int): Int =
  >   var r := 0;
  >   foreach q in (select s from s in squares where s.1 == n end) do r := q.2 end;
  >   r
  > do io.print_int(lookup(2)); io.newline() end
  > TL

  $ tmlc save db.tl store.img
  4
  -- store image written to store.img
  $ tmlc exec store.img lookup 3
  -- done 9, 157 abstract instructions
