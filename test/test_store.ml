(* The durable log-structured store: write-ahead commit semantics, crash
   recovery at every possible torn-write point, CRC rejection, compaction,
   and the persistent heap above it (lazy faulting, LRU eviction, dirty
   write-back, durable reflective optimization). *)

open Tml_core
open Tml_vm
module Ls = Tml_store.Log_store
module Stats = Tml_store.Store_stats

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let temp_store () =
  let path = Filename.temp_file "tml_store_test" ".tmlstore" in
  Sys.remove path;
  path

let with_store f =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

(* --- write-ahead log ---------------------------------------------- *)

let test_wal_basics () =
  with_store (fun path ->
      let t = Ls.create ~fsync:false path in
      Ls.put t 0 "alpha";
      Ls.put t 1 "beta";
      check tint "staged" 2 (Ls.staged_count t);
      check tbool "staged readable" true (Ls.find t 1 = Some "beta");
      check tint "two records" 2 (Ls.commit t);
      check tint "nothing staged" 0 (Ls.staged_count t);
      check tint "empty commit writes nothing" 0 (Ls.commit t);
      Ls.put t 0 "alpha2";
      Ls.put t 0 "alpha3" (* last staging wins *);
      check tint "one record" 1 (Ls.commit ~root:1 t);
      check tbool "superseded" true (Ls.find t 0 = Some "alpha3");
      Ls.close t;
      let t = Ls.open_ ~fsync:false path in
      check tint "objects back" 2 (Ls.object_count t);
      check tbool "latest version" true (Ls.find t 0 = Some "alpha3");
      check tbool "root sticky" true (Ls.root t = Some 1);
      check tint "no truncation" 0 (Ls.stats t).Stats.recovery_truncations;
      check tint "two transactions" 2 (Ls.seq t);
      Ls.close t)

let test_uncommitted_puts_are_lost () =
  with_store (fun path ->
      let t = Ls.create ~fsync:false path in
      Ls.put t 0 "durable";
      ignore (Ls.commit t);
      Ls.put t 1 "volatile" (* never committed *);
      Ls.close t;
      let t = Ls.open_ ~fsync:false path in
      check tbool "sealed survives" true (Ls.find t 0 = Some "durable");
      check tbool "unsealed gone" true (Ls.find t 1 = None);
      Ls.close t)

(* Write two transactions, then replay recovery from every byte-length
   prefix of the file covering the whole last transaction: every cut must
   recover exactly the first transaction's state, and the truncated tail
   must be counted. *)
let test_truncation_sweep () =
  with_store (fun path ->
      let t = Ls.create ~fsync:false path in
      Ls.put t 0 "first";
      Ls.put t 1 (String.make 200 'x');
      ignore (Ls.commit ~root:0 t);
      let sealed_len = Ls.file_bytes t in
      Ls.put t 1 "second-version";
      Ls.put t 2 "second-new";
      ignore (Ls.commit ~root:2 t);
      let full_len = Ls.file_bytes t in
      Ls.close t;
      let data = read_file path in
      check tint "file length" full_len (String.length data);
      for cut = sealed_len to full_len do
        let p = temp_store () in
        write_file p (String.sub data 0 cut);
        let t = Ls.open_ ~fsync:false p in
        if cut = full_len then begin
          check tint "full file: no truncation" 0 (Ls.stats t).Stats.recovery_truncations;
          check tbool "full file: second txn" true (Ls.find t 2 = Some "second-new")
        end
        else begin
          check tbool
            (Printf.sprintf "cut %d: first txn state" cut)
            true
            (Ls.find t 0 = Some "first"
            && Ls.find t 1 = Some (String.make 200 'x')
            && Ls.find t 2 = None
            && Ls.root t = Some 0
            && Ls.seq t = 1);
          if cut > sealed_len then begin
            check tint
              (Printf.sprintf "cut %d: truncation counted" cut)
              1
              (Ls.stats t).Stats.recovery_truncations;
            check tint
              (Printf.sprintf "cut %d: truncated bytes" cut)
              (cut - sealed_len)
              (Ls.stats t).Stats.truncated_bytes
          end;
          (* recovery must also have repaired the file on disk *)
          check tint
            (Printf.sprintf "cut %d: file repaired" cut)
            sealed_len
            (Unix.stat p).Unix.st_size
        end;
        (* the recovered store accepts new transactions *)
        Ls.put t 7 "after-recovery";
        ignore (Ls.commit t);
        Ls.close t;
        let t = Ls.open_ ~fsync:false p in
        check tbool "recovered store usable" true (Ls.find t 7 = Some "after-recovery");
        Ls.close t;
        Sys.remove p
      done)

let test_crc_corruption_cuts_tail () =
  with_store (fun path ->
      let t = Ls.create ~fsync:false path in
      Ls.put t 0 "good";
      ignore (Ls.commit t);
      let sealed_len = Ls.file_bytes t in
      Ls.put t 1 "to-be-corrupted";
      ignore (Ls.commit t);
      Ls.close t;
      let data = Bytes.of_string (read_file path) in
      (* flip one payload byte inside the second transaction *)
      Bytes.set data (sealed_len + 3) (Char.chr (Char.code (Bytes.get data (sealed_len + 3)) lxor 0xff));
      write_file path (Bytes.to_string data);
      let t = Ls.open_ ~fsync:false path in
      check tint "corrupt tail truncated" 1 (Ls.stats t).Stats.recovery_truncations;
      check tbool "first txn intact" true (Ls.find t 0 = Some "good");
      check tbool "corrupt txn gone" true (Ls.find t 1 = None);
      Ls.close t)

let test_bad_magic_rejected () =
  with_store (fun path ->
      write_file path "definitely not a store";
      match Ls.open_ ~fsync:false path with
      | exception Ls.Store_error _ -> ()
      | t ->
        Ls.close t;
        Alcotest.fail "bad magic accepted")

let test_compaction () =
  with_store (fun path ->
      let t = Ls.create ~fsync:false path in
      for round = 1 to 10 do
        Ls.put t 0 (Printf.sprintf "version-%d" round);
        Ls.put t round (Printf.sprintf "object-%d" round);
        ignore (Ls.commit ~root:0 t)
      done;
      let before = Ls.file_bytes t in
      check tbool "garbage accumulated" true (Ls.live_bytes t < before);
      Ls.compact t;
      let after = Ls.file_bytes t in
      check tbool "file shrank" true (after < before);
      check tbool "latest version" true (Ls.find t 0 = Some "version-10");
      check tbool "all objects live" true (Ls.object_count t = 11);
      check tbool "root survives" true (Ls.root t = Some 0);
      Ls.put t 99 "post-compact";
      ignore (Ls.commit t);
      Ls.close t;
      let t = Ls.open_ ~fsync:false path in
      check tbool "reopen after compact" true
        (Ls.find t 5 = Some "object-5" && Ls.find t 99 = Some "post-compact");
      check tint "clean reopen" 0 (Ls.stats t).Stats.recovery_truncations;
      Ls.close t)

(* --- persistent heap ---------------------------------------------- *)

let test_pstore_lazy_faulting () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let oids =
        Array.init 20 (fun i ->
            Value.Heap.alloc heap (Value.Vector [| Value.Int i; Value.Str (string_of_int i) |]))
      in
      check tint "everything new" 20 (Pstore.commit ps);
      Pstore.close ps;
      let ps = Pstore.open_ ~fsync:false path in
      let heap = Pstore.heap ps in
      (* a cold open decodes nothing *)
      check tint "cold open: no faults" 0 (Pstore.stats ps).Stats.faults;
      check tint "cold open: nothing loaded" 0 (Value.Heap.loaded_count heap);
      (match Value.Heap.get heap oids.(7) with
      | Value.Vector [| Value.Int 7; Value.Str "7" |] -> ()
      | _ -> Alcotest.fail "faulted object corrupted");
      check tint "one fault" 1 (Pstore.stats ps).Stats.faults;
      check tint "one loaded" 1 (Value.Heap.loaded_count heap);
      (* second access is a cache hit, not a fault *)
      ignore (Value.Heap.get heap oids.(7));
      check tint "still one fault" 1 (Pstore.stats ps).Stats.faults;
      check tbool "hit counted" true ((Pstore.stats ps).Stats.cache_hits > 0);
      Pstore.close ps)

let test_pstore_mutation_roundtrip () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let arr = Value.Heap.alloc heap (Value.Array [| Value.Int 1; Value.Int 2 |]) in
      ignore (Pstore.commit ps);
      (* in-place mutation: the access dirties the array, commit rewrites it *)
      (match Value.Heap.get heap arr with
      | Value.Array slots -> slots.(0) <- Value.Int 99
      | _ -> assert false);
      check tbool "dirty tracked" true (Pstore.dirty_count ps > 0);
      check tint "one object rewritten" 1 (Pstore.commit ps);
      Pstore.close ps;
      let ps = Pstore.open_ ~fsync:false path in
      (match Value.Heap.get (Pstore.heap ps) arr with
      | Value.Array [| Value.Int 99; Value.Int 2 |] -> ()
      | _ -> Alcotest.fail "mutation lost");
      Pstore.close ps)

let test_pstore_uncommitted_lost () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let a = Value.Heap.alloc heap (Value.Vector [| Value.Int 1 |]) in
      ignore (Pstore.commit ps);
      let b = Value.Heap.alloc heap (Value.Vector [| Value.Int 2 |]) in
      ignore b;
      (* no commit: simulate a crash by reopening the file directly *)
      Pstore.close ps;
      let ps = Pstore.open_ ~fsync:false path in
      let heap = Pstore.heap ps in
      check tbool "committed survives" true (Value.Heap.get_opt heap a <> None);
      check tint "uncommitted gone" (Oid.to_int a + 1) (Value.Heap.size heap);
      Pstore.close ps)

let test_pstore_lru_eviction () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let oids =
        Array.init 16 (fun i -> Value.Heap.alloc heap (Value.Vector [| Value.Int i |]))
      in
      ignore (Pstore.commit ps);
      Pstore.close ps;
      let ps = Pstore.open_ ~cache_capacity:4 ~fsync:false path in
      let heap = Pstore.heap ps in
      Array.iter (fun oid -> ignore (Value.Heap.get heap oid)) oids;
      check tbool "evictions happened" true ((Pstore.stats ps).Stats.evictions > 0);
      check tbool "cache bounded" true (Value.Heap.loaded_count heap <= 5);
      (* evicted objects fault back in with the right contents *)
      Array.iteri
        (fun i oid ->
          match Value.Heap.get heap oid with
          | Value.Vector [| Value.Int j |] when i = j -> ()
          | _ -> Alcotest.failf "object %d wrong after re-fault" i)
        oids;
      check tbool "refaults counted" true ((Pstore.stats ps).Stats.faults > 16);
      Pstore.close ps)

let test_pstore_relation_refault () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let ctx = Runtime.create heap in
      let rel =
        Tml_query.Rel.create ctx ~name:"r"
          [ [| Value.Int 1; Value.Str "a" |]; [| Value.Int 2; Value.Str "b" |] ]
      in
      Tml_query.Rel.add_index ctx rel 0;
      ignore (Pstore.commit ps);
      Pstore.close ps;
      let ps = Pstore.open_ ~fsync:false path in
      let ctx = Runtime.create (Pstore.heap ps) in
      (* the persisted index serves the lookup directly: only the
         relation header and the index object fault, never the rows *)
      Tml_query.Rel.index_builds := 0;
      Tml_query.Rel.index_loads := 0;
      (match Tml_query.Rel.lookup ctx rel ~field:0 (Literal.Int 2) with
      | Some [ pos ] -> (
        check tint "no index rebuild on reopen" 0 !Tml_query.Rel.index_builds;
        check tint "index loaded from store" 1 !Tml_query.Rel.index_loads;
        check tbool "rows not faulted by lookup" true
          ((Pstore.stats ps).Stats.faults <= 2);
        (* resolving the position faults the row tuple itself *)
        match Tml_query.Rel.nth ctx rel pos with
        | Value.Oidv t -> (
          match Value.Heap.get (Pstore.heap ps) t with
          | Value.Tuple [| Value.Int 2; Value.Str "b" |] -> ()
          | _ -> Alcotest.fail "row tuple wrong after re-fault")
        | _ -> Alcotest.fail "row is not a tuple reference")
      | _ -> Alcotest.fail "persisted index lost on reopen");
      Pstore.close ps)

let test_optimize_commits_durably () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let ctx = Runtime.create heap in
      ctx.Runtime.durable_commit <- Some (fun () -> ignore (Pstore.commit ps));
      let proc = Sexp.parse_value "proc(x ce! cc!) (* x x ce! cc!)" in
      let oid = Value.Heap.alloc_func heap ~name:"square" proc in
      ignore (Pstore.commit ps);
      let r = Tml_reflect.Reflect.optimize_inplace ctx oid in
      check tbool "optimizer reported" true
        (r.Tml_reflect.Reflect.report.Tml_core.Optimizer.cost_after
        <= r.Tml_reflect.Reflect.report.Tml_core.Optimizer.cost_before);
      (* no explicit commit: the optimizer committed through the hook *)
      Pstore.close ps;
      let ps = Pstore.open_ ~fsync:false path in
      let heap = Pstore.heap ps in
      (match Value.Heap.get heap oid with
      | Value.Func fo ->
        check tbool "derived attributes persisted" true
          (List.mem_assoc "cost_before" fo.Value.fo_attrs
          && List.mem_assoc "cost_after" fo.Value.fo_attrs)
      | _ -> Alcotest.fail "function lost");
      let ctx = Runtime.create heap in
      (match Machine.run_proc ctx (Value.Oidv oid) [ Value.Int 9 ] with
      | Eval.Done (Value.Int 81) -> ()
      | o -> Alcotest.failf "optimized function broken: %a" Eval.pp_outcome o);
      Pstore.close ps)

let test_pstore_crash_recovery () =
  with_store (fun path ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let a = Value.Heap.alloc heap (Value.Array [| Value.Int 1 |]) in
      ignore (Pstore.commit ps);
      (match Value.Heap.get heap a with
      | Value.Array slots -> slots.(0) <- Value.Int 2
      | _ -> assert false);
      ignore (Pstore.commit ps);
      Pstore.close ps;
      (* tear the last transaction in half *)
      let data = read_file path in
      write_file path (String.sub data 0 (String.length data - 3));
      let ps = Pstore.open_ ~fsync:false path in
      check tint "torn tail cut" 1 (Pstore.stats ps).Stats.recovery_truncations;
      (match Value.Heap.get (Pstore.heap ps) a with
      | Value.Array [| Value.Int 1 |] -> ()
      | _ -> Alcotest.fail "did not recover the sealed state");
      Pstore.close ps)

let () =
  Runtime.install ();
  Tml_query.Qprims.install ();
  Alcotest.run "tml_store"
    [
      ( "log",
        [
          Alcotest.test_case "write-ahead basics" `Quick test_wal_basics;
          Alcotest.test_case "uncommitted puts are lost" `Quick test_uncommitted_puts_are_lost;
          Alcotest.test_case "recovery at every truncation point" `Quick test_truncation_sweep;
          Alcotest.test_case "CRC corruption cuts the tail" `Quick test_crc_corruption_cuts_tail;
          Alcotest.test_case "bad magic rejected" `Quick test_bad_magic_rejected;
          Alcotest.test_case "compaction" `Quick test_compaction;
        ] );
      ( "pstore",
        [
          Alcotest.test_case "lazy faulting" `Quick test_pstore_lazy_faulting;
          Alcotest.test_case "mutations round trip" `Quick test_pstore_mutation_roundtrip;
          Alcotest.test_case "uncommitted objects lost" `Quick test_pstore_uncommitted_lost;
          Alcotest.test_case "LRU eviction and re-fault" `Quick test_pstore_lru_eviction;
          Alcotest.test_case "relation index persisted across reopen" `Quick
            test_pstore_relation_refault;
          Alcotest.test_case "optimizer commits durably" `Quick test_optimize_commits_durably;
          Alcotest.test_case "crash recovery" `Quick test_pstore_crash_recovery;
        ] );
    ]
