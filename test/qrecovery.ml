(* Crash-recovery driver for the query_recovery.t cram test.

   stage1 builds a multi-page relation with a persistent secondary index
   and a stats object, commits it, then writes a second insert batch and
   tears the log mid-record — the moment a crash would leave behind.
   stage2 reopens the store: recovery must seal the log at the last
   intact commit, and the chunked relation, its index and its statistics
   must come back consistent with each other (the index serves lookups
   without a rebuild and agrees with a full scan).

   Run with no arguments (as part of the plain test binary sweep) it does
   nothing. *)

open Tml_core
open Tml_vm
open Tml_query

let lookup_len ctx rel key =
  match Rel.lookup ctx rel ~field:1 (Literal.Int key) with
  | Some positions -> List.length positions
  | None -> -1

let scan_len ctx rel key =
  let n = ref 0 in
  Rel.iteri ctx rel (fun _ row ->
      let fields = Rel.row_tuple ctx row in
      if Array.length fields > 1 && Value.identical fields.(1) (Value.Int key) then incr n);
  !n

let stage1 path =
  Relcore.default_page_size := 4;
  Qprims.install ();
  let ps = Pstore.create ~fsync:false path in
  let ctx = Runtime.create (Pstore.heap ps) in
  let rows = List.init 22 (fun i -> [| Value.Int i; Value.Int (i mod 5) |]) in
  let rel = Rel.create ctx ~name:"events" rows in
  Rel.add_index ctx rel 1;
  ignore (Pstore.commit ~root:rel ps);
  let r = Rel.get ctx rel in
  Printf.printf "baseline: %d rows in %d pages + %d tail, lookup(1)=%d\n"
    (Rel.length ctx rel) (Relcore.page_count r) r.Value.rel_tail_len
    (lookup_len ctx rel 1);
  let baseline = (Unix.stat path).Unix.st_size in
  (* the batch a crash will swallow *)
  for i = 100 to 104 do
    Rel.insert ctx rel [| Value.Int i; Value.Int (i mod 5) |]
  done;
  ignore (Pstore.commit ps);
  Pstore.close ps;
  let full = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (baseline + ((full - baseline) / 2));
  Unix.close fd;
  Printf.printf "tore the log mid-record inside the second commit\n"

let stage2 path =
  Qprims.install ();
  let ps = Pstore.open_ ~fsync:false path in
  let ctx = Runtime.create (Pstore.heap ps) in
  let rel = match Pstore.root ps with Some oid -> oid | None -> failwith "no root" in
  Rel.index_builds := 0;
  Rel.index_loads := 0;
  let looked = lookup_len ctx rel 1 in
  let n = Rel.length ctx rel in
  let scanned = scan_len ctx rel 1 in
  let stats_card = match Rel.stats ctx rel with Some st -> st.Value.st_count | None -> -1 in
  Printf.printf "recovered: %d rows, lookup(1)=%d, scan(1)=%d, stats count=%d\n" n looked
    scanned stats_card;
  Printf.printf "index loads=%d rebuilds=%d, log truncations=%d\n" !Rel.index_loads
    !Rel.index_builds
    (Pstore.stats ps).Tml_store.Store_stats.recovery_truncations;
  Pstore.close ps

let () =
  match Sys.argv with
  | [| _; "stage1"; path |] -> stage1 path
  | [| _; "stage2"; path |] -> stage2 path
  | _ -> ()
