(* Tests for the PTML codec (section 4.1) and the low-level binary codec. *)

open Tml_core
module Codec = Tml_store.Codec
module Ptml = Tml_store.Ptml

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)
(* ------------------------------------------------------------------ *)

let test_varint () =
  let values = [ 0; 1; 127; 128; 300; 65_535; 1 lsl 40; max_int ] in
  let w = Codec.W.create () in
  List.iter (Codec.W.varint w) values;
  let r = Codec.R.of_string (Codec.W.contents w) in
  List.iter (fun v -> check tint (string_of_int v) v (Codec.R.varint r)) values;
  check tbool "at end" true (Codec.R.at_end r)

let test_svarint () =
  let values = [ 0; 1; -1; 63; 64; -64; -65; 12345; -12345; max_int; min_int ] in
  let w = Codec.W.create () in
  List.iter (Codec.W.svarint w) values;
  let r = Codec.R.of_string (Codec.W.contents w) in
  List.iter (fun v -> check tint (string_of_int v) v (Codec.R.svarint r)) values

let test_float64 () =
  let values = [ 0.0; -0.0; 1.5; -3.25; Float.max_float; Float.min_float; infinity; Float.nan ] in
  let w = Codec.W.create () in
  List.iter (Codec.W.float64 w) values;
  let r = Codec.R.of_string (Codec.W.contents w) in
  List.iter
    (fun v ->
      let got = Codec.R.float64 r in
      check tbool (string_of_float v) true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float got)))
    values

let test_strings () =
  let w = Codec.W.create () in
  Codec.W.str w "";
  Codec.W.str w "hello";
  Codec.W.str w (String.make 1000 'x');
  let r = Codec.R.of_string (Codec.W.contents w) in
  check tstring "empty" "" (Codec.R.str r);
  check tstring "hello" "hello" (Codec.R.str r);
  check tint "long" 1000 (String.length (Codec.R.str r))

let test_truncated () =
  let r = Codec.R.of_string "\x80" in
  (* varint continuation byte with no successor *)
  match Codec.R.varint r with
  | exception Codec.R.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

(* ------------------------------------------------------------------ *)
(* PTML                                                                 *)
(* ------------------------------------------------------------------ *)

let roundtrip_value v =
  let bytes = Ptml.encode_value v in
  let v' = Ptml.decode_value bytes in
  if not (Term.equal_value v v') then
    Alcotest.failf "PTML roundtrip not structural:@.%s@.vs@.%s" (Sexp.print_value v)
      (Sexp.print_value v')

let test_roundtrip_samples () =
  List.iter
    (fun s -> roundtrip_value (Sexp.parse_value s))
    [
      "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))";
      "proc(a b ce! k!) (== a 1 'q' cont() (k! \"left\") cont() (k! \"right\") cont() (k! \
       nil))";
      "proc(ce! cc!) (Y lambda(c0! loop! c!) (c! cont() (loop! 3) cont(i) (cc! i)))";
      "proc(f x ce! cc!) (f 3.14 -42 <oid 77> x ce! cc!)";
    ]

let test_roundtrip_generated () =
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 300 do
    roundtrip_value (Gen.proc2 rng ~size:20)
  done

let test_stamps_preserved () =
  let v = Sexp.parse_value "proc(x ce! cc!) (+ x x ce! cc!)" in
  let v' = Ptml.decode_value (Ptml.encode_value v) in
  (* structural equality includes stamps *)
  check tbool "stamps preserved" true (Term.equal_value v v')

let test_string_interning () =
  (* the same long identifier name appearing many times is pooled: size
     grows sublinearly *)
  let mk n =
    let params = List.init n (fun _ -> Ident.fresh "a_rather_long_identifier_name") in
    let cc = Ident.fresh ~sort:Ident.Cont "cc" in
    Term.abs (params @ [ cc ]) (Term.app (Term.var cc) (List.map Term.var params))
  in
  let s1 = Ptml.encoded_size_value (mk 2) in
  let s10 = Ptml.encoded_size_value (mk 20) in
  check tbool "sublinear growth (interned names)" true (s10 < s1 * 8)

let test_decode_errors () =
  (match Ptml.decode_value "garbage" with
  | exception Ptml.Decode_error _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let good = Ptml.encode_value (Sexp.parse_value "proc(x ce! cc!) (cc! x)") in
  let truncated = String.sub good 0 (String.length good - 2) in
  (match Ptml.decode_value truncated with
  | exception Ptml.Decode_error _ -> ()
  | _ -> Alcotest.fail "truncated accepted");
  (* flipping a tag byte deep inside should error or decode to a different
     term, never crash *)
  let mutated = Bytes.of_string good in
  Bytes.set mutated (String.length good - 1) '\xff';
  match Ptml.decode_value (Bytes.to_string mutated) with
  | exception Ptml.Decode_error _ -> ()
  | _ -> ()

let test_app_roundtrip () =
  let a = Sexp.parse_app "(+ 1 2 ce! cont(t) (cc! t))" in
  let a' = Ptml.decode_app (Ptml.encode_app a) in
  check tbool "app roundtrip" true (Term.equal_app a a')

let test_compactness () =
  (* PTML should be materially smaller than the printed text *)
  let v = Sexp.parse_value (Tml_core.Sexp.print_value (Gen.proc2 (Random.State.make [| 3 |]) ~size:60)) in
  let text = String.length (Sexp.print_value v) in
  let binary = Ptml.encoded_size_value v in
  check tbool
    (Printf.sprintf "binary (%d) < text (%d)" binary text)
    true (binary < text)

(* The hashcons structural hash is a pure function of stamps, literals and
   primitive names — all of which the codec preserves exactly — so it must
   be bit-identical across an encode/decode round trip.  The specialization
   cache relies on this: fingerprints computed against decoded PTML must
   match ones computed against the live tree. *)
let test_hash_stable_roundtrip () =
  let rng = Random.State.make [| 0x9a5 |] in
  for i = 0 to 30 do
    let v = Gen.proc2 rng ~size:(10 + (2 * i)) in
    let v' = Ptml.decode_value (Ptml.encode_value v) in
    check tint "hash stable across encode/decode" (Hashcons.hash_value v)
      (Hashcons.hash_value v');
    check tbool "hashcons equality across encode/decode" true (Hashcons.equal_value v v')
  done

let () =
  Primitives.install ();
  Alcotest.run "tml_ptml"
    [
      ( "codec",
        [
          Alcotest.test_case "varint" `Quick test_varint;
          Alcotest.test_case "signed varint" `Quick test_svarint;
          Alcotest.test_case "float64" `Quick test_float64;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "truncation" `Quick test_truncated;
        ] );
      ( "ptml",
        [
          Alcotest.test_case "sample round trips" `Quick test_roundtrip_samples;
          Alcotest.test_case "generated round trips" `Quick test_roundtrip_generated;
          Alcotest.test_case "stamps preserved" `Quick test_stamps_preserved;
          Alcotest.test_case "names interned" `Quick test_string_interning;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "application payload" `Quick test_app_roundtrip;
          Alcotest.test_case "compact vs text" `Quick test_compactness;
          Alcotest.test_case "structural hash stable" `Quick test_hash_stable_roundtrip;
        ] );
    ]
