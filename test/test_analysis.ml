(* Tests for the effect / alias / escape analysis framework (lib/analysis):
   the signature lattice, inferred effect signatures on hand-built terms,
   shadow-aware occurrence counting, escape verdicts, the effect-based
   optimizer rules, the analysis-gated constant-selection rewrite, and the
   per-OID summary cache. *)

open Tml_core
open Tml_analysis

let () = Tml_query.Qprims.install ()

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let parse = Sexp.parse_app

let proc_sig src =
  match Sexp.parse_value src with
  | Term.Abs f -> Infer.strip (Infer.summarize Infer.empty_env f)
  | _ -> Alcotest.fail "expected an abstraction"

let count_prim name a =
  let n = ref 0 in
  Term.iter_apps
    (fun { Term.func; _ } -> if func = Term.Prim name then incr n)
    { Term.func = Term.prim "hold"; args = [ Term.Abs { Term.params = []; body = a } ] };
  !n

(* ------------------------------------------------------------------ *)
(* Signature lattice                                                   *)
(* ------------------------------------------------------------------ *)

let test_lattice () =
  check tbool "bot is read-only" true (Effsig.read_only Effsig.bot);
  check tbool "top is not" false (Effsig.read_only Effsig.top);
  check tbool "join is monotone to top" true
    (Effsig.equal (Effsig.join Effsig.bot Effsig.top) Effsig.top);
  check tbool "join of classes is the max" true
    (Effsig.class_join Prim.Observer Prim.Mutator = Prim.Mutator);
  check tbool "class order" true (Effsig.class_leq Prim.Pure Prim.External);
  let k = Ident.fresh ~sort:Ident.Cont "k" in
  let s = Effsig.exit_to k in
  check tbool "exit is within itself" true (Effsig.exits_within s (Ident.Set.singleton k));
  check tbool "exit is not within empty" false (Effsig.exits_within s Ident.Set.empty);
  check tbool "unknown exits are never within" false
    (Effsig.exits_within Effsig.top (Ident.Set.singleton k))

(* ------------------------------------------------------------------ *)
(* Inferred effect signatures                                          *)
(* ------------------------------------------------------------------ *)

let test_sig_pure_jump () =
  let s = proc_sig "proc(a ce! cc!) (cc! a)" in
  check tbool "pure" true (s.Effsig.eff = Prim.Pure);
  check tbool "terminates" false s.Effsig.diverges;
  check tbool "fault-free" false s.Effsig.faults;
  check tbool "confined" true (Effsig.exits_within s Ident.Set.empty)

let test_sig_observer_pipeline () =
  (* the purity corpus shape: select + count over an opaque relation *)
  let s =
    proc_sig
      "proc(r ce! cc!) (select proc(x pce! pcc!) ([] x 1 cont(f) (< f 6 cont() (pcc! \
       true) cont() (pcc! false))) r ce! cont(sel) (count sel cont(n) (cc! n)))"
  in
  check tbool "read-only" true (Effsig.read_only s);
  check tbool "terminates" false s.Effsig.diverges;
  (* [] and < have runtime sort checks: the fault bit must stay set *)
  check tbool "may fault" true s.Effsig.faults

let test_sig_mutator () =
  let s =
    proc_sig "proc(r ce! cc!) (tuple 1 cont(t) (insert r t ce! cont(u) (cc! u)))"
  in
  check tbool "not read-only" false (Effsig.read_only s);
  check tbool "mutator class" true (s.Effsig.eff = Prim.Mutator)

let test_sig_unknown_callee () =
  (* calling an opaque parameter: everything is possible *)
  let s = proc_sig "proc(f ce! cc!) (f 1 ce! cc!)" in
  check tbool "worst case" true (Effsig.equal s Effsig.top)

let test_sig_faults () =
  (* + has an overflow check; == with a default branch is total *)
  let s = proc_sig "proc(a ce! cc!) (+ a 1 ce! cont(t) (cc! t))" in
  check tbool "arith may fault" true s.Effsig.faults;
  check tbool "arith is pure" true (s.Effsig.eff = Prim.Pure);
  let s2 = proc_sig "proc(a ce! cc!) (== a 1 cont() (cc! 1) cont() (cc! 2))" in
  check tbool "case with default never faults" false s2.Effsig.faults

let test_sig_exits () =
  let a = parse "(k! 1)" in
  let s = Infer.sig_of_app a in
  let k =
    match Ident.Set.elements (Term.free_vars_app a) with
    | [ k ] -> k
    | _ -> Alcotest.fail "expected one free variable"
  in
  check tbool "jump exits to k" true (Effsig.exits_within s (Ident.Set.singleton k));
  check tbool "jump arity seen" true (Infer.jumps_with_arity k 1 a);
  check tbool "jump arity mismatch" false (Infer.jumps_with_arity k 2 a)

(* ------------------------------------------------------------------ *)
(* Shadow-aware occurrence counts                                      *)
(* ------------------------------------------------------------------ *)

(* Sexp binders alphatize, so duplicated bindings — case arms or Y nests
   sharing an identifier mid-rewrite — must be built by hand *)
let test_occurs_shadowing () =
  let x = Ident.fresh "x" in
  let g = Ident.fresh "g" in
  let k = Ident.fresh ~sort:Ident.Cont "k" in
  (* (g x cont(x) (g x x k!)) — the inner cont re-binds x *)
  let inner = Term.app (Term.var g) [ Term.var x; Term.var x; Term.var k ] in
  let a = Term.app (Term.var g) [ Term.var x; Term.abs [ x ] inner ] in
  check tint "only the free occurrence counts" 1 (Occurs.count_app x a);
  check tbool "occurs sees the free occurrence" true (Occurs.occurs_app x a);
  (* a value whose only uses sit under the re-binder is dead *)
  let dead = Term.app (Term.var g) [ Term.int 0; Term.abs [ x ] inner ] in
  check tint "uses under the re-binder do not count" 0 (Occurs.count_app x dead);
  check tbool "so the outer binding is dead" false (Occurs.occurs_app x dead);
  (* the flat table stays per-use: it cannot attribute bindings *)
  let all = Occurs.count_all_app dead in
  check tint "flat table counts every use" 2
    (match Ident.Tbl.find_opt all x with Some n -> n | None -> 0)

(* ------------------------------------------------------------------ *)
(* Escape verdicts                                                     *)
(* ------------------------------------------------------------------ *)

let tmp_of a =
  (* the σtrue select binds its result as the continuation's parameter *)
  match a.Term.args with
  | [ _; _; _; Term.Abs { Term.params = [ tmp ]; body } ] -> tmp, body
  | _ -> Alcotest.fail "expected (select pred rel ce cont(tmp) body)"

let select_src body =
  Printf.sprintf "(select proc(x pce! pcc!) (pcc! true) r ce! cont(s) %s)" body

let test_escape_reader () =
  let tmp, body = tmp_of (parse (select_src "(count s k!)")) in
  check tbool "read-only consumer is safe" true (Alias.select_alias_ok ~tmp body)

let test_escape_mutation () =
  let tmp, body =
    tmp_of (parse (select_src "(tuple 0 cont(t) (insert s t ce2! cont(u) (k! 0)))"))
  in
  check tbool "mutation through the alias is rejected" false
    (Alias.select_alias_ok ~tmp body)

let test_escape_unknown_call () =
  let tmp, body = tmp_of (parse (select_src "(f s k!)")) in
  check tbool "escape to an unknown procedure is rejected" false
    (Alias.select_alias_ok ~tmp body)

let test_escape_known_reader_flow () =
  (* the temp flows through a β-bound procedure that only reads it: the
     syntactic walk rejects this, the flow analysis accepts it *)
  let a =
    parse
      (select_src
         "(proc(q qce! qcc!) (count q cont(n) (qcc! n)) s ce! cont(m) (k! m))")
  in
  let tmp, body = tmp_of a in
  check tbool "flow through a known reader is safe" true
    (Alias.select_alias_ok ~tmp body)

let test_escape_capture () =
  (* a closure capturing the temp handed to an unknown procedure *)
  let tmp, body =
    tmp_of (parse (select_src "(f proc(z zce! zcc!) (count s cont(n) (zcc! n)) k!)"))
  in
  check tbool "captured escape is rejected" false (Alias.select_alias_ok ~tmp body)

(* ------------------------------------------------------------------ *)
(* The optimizer bridge                                                *)
(* ------------------------------------------------------------------ *)

(* a call whose continuation ignores the result; the callee is a total
   case dispatch (pure, never faults, confined to its cc) *)
let dead_total_call =
  "(proc(a ce! cc!) (== a 1 cont() (cc! 1) cont() (cc! 2)) b ke! cont(x) (k! 7))"

let test_effect_remove_fires () =
  match Bridge.effect_remove (parse dead_total_call) with
  | Some a' ->
    check tbool "reduces to the continuation body" true
      (Term.alpha_equal_by_name_app a' (parse "(k! 7)"))
  | None -> Alcotest.fail "effect_remove did not fire"

let test_effect_remove_refuses () =
  (* faulting callee: + overflows on some inputs, deletion would be
     observable through the fault *)
  let faulting = "(proc(a ce! cc!) (+ a 1 ce! cont(t) (cc! t)) b ke! cont(x) (k! 7))" in
  check tbool "faulting callee kept" true (Bridge.effect_remove (parse faulting) = None);
  (* result used: not a removal candidate at all *)
  let used =
    "(proc(a ce! cc!) (== a 1 cont() (cc! 1) cont() (cc! 2)) b ke! cont(x) (k! x))"
  in
  check tbool "live result kept" true (Bridge.effect_remove (parse used) = None);
  (* mutating callee *)
  let mut = "(proc(a ce! cc!) (insert r a ce! cont(u) (cc! u)) b ke! cont(x) (k! 7))" in
  check tbool "mutating callee kept" true (Bridge.effect_remove (parse mut) = None)

let test_optimizer_uses_effect_remove () =
  (* the plain optimizer cannot delete the dispatch (unknown scrutinee, no
     syntactic rule applies); the analysis bridge can *)
  let a = parse dead_total_call in
  let plain, _ = Optimizer.optimize_app ~config:Optimizer.o3 a in
  check tint "plain o3 keeps the dispatch" 1 (count_prim "==" plain);
  let bridged, _ = Optimizer.optimize_app ~config:(Bridge.with_analysis Optimizer.o3) a in
  check tint "analysis o3 deletes it" 0 (count_prim "==" bridged)

let test_gated_constant_select () =
  (* acceptance case: σtrue whose temp flows through a β-bound reader used
     TWICE — β reduction cannot inline a multi-use abstraction, so the
     region keeps its calls through a variable: alias_safe rejects it, the
     flow analysis resolves the binding and accepts it *)
  let src =
    select_src
      "(cont(reader) (reader s ce! cont(m) (reader s ce! cont(m2) (k! m m2))) \
       proc(q qce! qcc!) (count q cont(n) (qcc! n)))"
  in
  let tmp, body = tmp_of (parse src) in
  check tbool "syntactic walk rejects" false (Tml_query.Qrewrite.alias_safe tmp body);
  let reduce () = Rewrite.reduce_app ~rules:Tml_query.Qopt.static_rules (parse src) in
  let with_analysis = reduce () in
  check tint "analysis gate fires σtrue" 0 (count_prim "select" with_analysis);
  Bridge.enabled := false;
  let without = reduce () in
  Bridge.enabled := true;
  check tint "syntactic fallback keeps the select" 1 (count_prim "select" without);
  (* the analysis gate must stay a superset: the fuzzer's minimized
     mutation counterexample is still rejected *)
  let mut =
    parse (select_src "(tuple 0 cont(t) (insert s t ce2! cont(u) (k! 0)))")
  in
  let mut' = Rewrite.reduce_app ~rules:Tml_query.Qopt.static_rules mut in
  check tint "mutating region still refused" 1 (count_prim "select" mut')

(* ------------------------------------------------------------------ *)
(* Per-OID summary cache                                               *)
(* ------------------------------------------------------------------ *)

let test_cache () =
  Cache.clear ();
  let oid = Oid.of_int 4242 in
  check tbool "miss before remember" true (Cache.find oid = None);
  Cache.remember oid (Sexp.parse_value "proc(a ce! cc!) (cc! a)");
  (match Cache.find oid with
  | Some { Cache.e_summary = Some s; _ } ->
    check tbool "cached summary is benign" true
      (Effsig.read_only (Infer.strip s))
  | _ -> Alcotest.fail "expected a cached summary");
  (* the resolver hook makes a literal-OID call a known callee *)
  let call =
    Term.app (Term.oid oid)
      [ Term.int 1; Term.var (Ident.fresh ~sort:Ident.Cont "ke");
        Term.var (Ident.fresh ~sort:Ident.Cont "k") ]
  in
  check tbool "literal-OID call resolves through the cache" true
    (Effsig.read_only (Infer.sig_of_app call));
  Cache.invalidate oid;
  check tbool "invalidated" true (Cache.find oid = None);
  check tbool "unresolved OID call is worst-case" true
    (Effsig.equal (Infer.sig_of_app call) Effsig.top);
  let hits, misses = Cache.stats () in
  check tbool "stats counted" true (hits >= 1 && misses >= 2);
  Cache.clear ();
  check tbool "stats reset" true (Cache.stats () = (0, 0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tml_analysis"
    [
      ("lattice", [ Alcotest.test_case "signature lattice" `Quick test_lattice ]);
      ( "effect inference",
        [
          Alcotest.test_case "pure jump" `Quick test_sig_pure_jump;
          Alcotest.test_case "observer pipeline" `Quick test_sig_observer_pipeline;
          Alcotest.test_case "mutator" `Quick test_sig_mutator;
          Alcotest.test_case "unknown callee" `Quick test_sig_unknown_callee;
          Alcotest.test_case "fault bits" `Quick test_sig_faults;
          Alcotest.test_case "exit tracking" `Quick test_sig_exits;
        ] );
      ( "occurs",
        [ Alcotest.test_case "shadow-aware counts" `Quick test_occurs_shadowing ] );
      ( "escape",
        [
          Alcotest.test_case "reader consumer" `Quick test_escape_reader;
          Alcotest.test_case "mutation" `Quick test_escape_mutation;
          Alcotest.test_case "unknown call" `Quick test_escape_unknown_call;
          Alcotest.test_case "known reader flow" `Quick test_escape_known_reader_flow;
          Alcotest.test_case "closure capture" `Quick test_escape_capture;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "effect_remove fires" `Quick test_effect_remove_fires;
          Alcotest.test_case "effect_remove refuses" `Quick test_effect_remove_refuses;
          Alcotest.test_case "optimizer integration" `Quick test_optimizer_uses_effect_remove;
          Alcotest.test_case "gated constant select" `Quick test_gated_constant_select;
        ] );
      ("cache", [ Alcotest.test_case "per-OID summaries" `Quick test_cache ]);
    ]
