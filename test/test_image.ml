(* Tests for whole-store image persistence. *)

open Tml_core
open Tml_vm

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_roundtrip_objects () =
  let heap = Value.Heap.create () in
  let a = Value.Heap.alloc heap (Value.Array [| Value.Int 1; Value.Str "two"; Value.Unit |]) in
  let v = Value.Heap.alloc heap (Value.Vector [| Value.Real 1.5; Value.Bool true |]) in
  let b = Value.Heap.alloc heap (Value.Bytes (Bytes.of_string "\x00\xffbytes")) in
  let t = Value.Heap.alloc heap (Value.Tuple [| Value.Char 'x'; Value.Oidv a |]) in
  let m =
    Value.Heap.alloc heap
      (Value.Module { Value.mod_name = "m"; exports = [| "f", Value.Oidv t |] })
  in
  let bytes = Image.save heap in
  let heap' = Image.load bytes in
  check tint "same size" (Value.Heap.size heap) (Value.Heap.size heap');
  (match Value.Heap.get heap' a with
  | Value.Array [| Value.Int 1; Value.Str "two"; Value.Unit |] -> ()
  | _ -> Alcotest.fail "array corrupted");
  (match Value.Heap.get heap' v with
  | Value.Vector [| Value.Real 1.5; Value.Bool true |] -> ()
  | _ -> Alcotest.fail "vector corrupted");
  (match Value.Heap.get heap' b with
  | Value.Bytes by -> check tbool "bytes" true (Bytes.to_string by = "\x00\xffbytes")
  | _ -> Alcotest.fail "bytes corrupted");
  (match Value.Heap.get heap' t with
  | Value.Tuple [| Value.Char 'x'; Value.Oidv a' |] ->
    check tbool "cross reference" true (Oid.equal a a')
  | _ -> Alcotest.fail "tuple corrupted");
  match Value.Heap.get heap' m with
  | Value.Module mo ->
    check tbool "module" true
      (mo.Value.mod_name = "m" && fst mo.Value.exports.(0) = "f")
  | _ -> Alcotest.fail "module corrupted"

let test_function_survives () =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let proc = Sexp.parse_value "proc(x ce! cc!) (* x x ce! cc!)" in
  let oid = Value.Heap.alloc_func heap ~name:"square" proc in
  (* prime caches, then save: caches must not be needed after load *)
  (match Machine.run_proc ctx (Value.Oidv oid) [ Value.Int 5 ] with
  | Eval.Done (Value.Int 25) -> ()
  | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o);
  let heap' = Image.load (Image.save heap) in
  let ctx' = Runtime.create heap' in
  (match Machine.run_proc ctx' (Value.Oidv oid) [ Value.Int 6 ] with
  | Eval.Done (Value.Int 36) -> ()
  | o -> Alcotest.failf "after load (machine): %a" Eval.pp_outcome o);
  match Eval.run_proc ctx' (Value.Oidv oid) [ Value.Int 7 ] with
  | Eval.Done (Value.Int 49) -> ()
  | o -> Alcotest.failf "after load (tree): %a" Eval.pp_outcome o

let test_bindings_survive () =
  let heap = Value.Heap.create () in
  let proc = Sexp.parse_value "proc(x ce! cc!) (helper x ce! cc!)" in
  let helper = Sexp.parse_value "proc(y ce! cc!) (+ y 100 ce! cc!)" in
  let helper_oid = Value.Heap.alloc_func heap ~name:"helper" helper in
  let oid = Value.Heap.alloc_func heap ~name:"caller" proc in
  (match Value.Heap.get heap oid with
  | Value.Func fo ->
    let free = Ident.Set.choose (Term.free_vars_value proc) in
    fo.Value.fo_bindings <- [ free, Value.Oidv helper_oid ]
  | _ -> assert false);
  let heap' = Image.load (Image.save heap) in
  let ctx' = Runtime.create heap' in
  match Machine.run_proc ctx' (Value.Oidv oid) [ Value.Int 1 ] with
  | Eval.Done (Value.Int 101) -> ()
  | o -> Alcotest.failf "bindings lost: %a" Eval.pp_outcome o

let test_relation_index_rebuilt () =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let rel =
    Tml_query.Rel.create ctx ~name:"r"
      [
        [| Value.Int 1; Value.Str "a" |];
        [| Value.Int 2; Value.Str "b" |];
        [| Value.Int 2; Value.Str "c" |];
      ]
  in
  Tml_query.Rel.add_index ctx rel 0;
  let heap' = Image.load (Image.save heap) in
  let ctx' = Runtime.create heap' in
  match Tml_query.Rel.lookup ctx' rel ~field:0 (Literal.Int 2) with
  | Some positions -> check tint "index rebuilt" 2 (List.length positions)
  | None -> Alcotest.fail "index lost"

let test_triggers_persist () =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let rel = Tml_query.Rel.create ctx ~name:"r" [ [| Value.Int 1 |] ] in
  let trigger =
    Value.Heap.alloc_func heap ~name:"t"
      (Sexp.parse_value "proc(row tce! tcc!) (tcc! nil)")
  in
  Tml_query.Rel.add_trigger ctx rel (Value.Oidv trigger);
  let heap' = Image.load (Image.save heap) in
  let ctx' = Runtime.create heap' in
  match Tml_query.Rel.triggers ctx' rel with
  | [ Value.Oidv t ] -> check tbool "trigger reference preserved" true (Oid.equal t trigger)
  | _ -> Alcotest.fail "triggers lost in image"

let test_live_closure_rejected () =
  let heap = Value.Heap.create () in
  let clo =
    Value.Closure
      {
        Value.t_abs = { Term.params = []; body = Term.app (Term.prim "raise") [ Term.unit_ ] };
        t_env = Ident.Map.empty;
      }
  in
  ignore (Value.Heap.alloc heap (Value.Array [| clo |]));
  match Image.save heap with
  | exception Image.Image_error _ -> ()
  | _ -> Alcotest.fail "live closure persisted"

let test_corrupt_image () =
  (match Image.load "not an image" with
  | exception Image.Image_error _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let heap = Value.Heap.create () in
  ignore (Value.Heap.alloc heap (Value.Array [| Value.Int 1 |]));
  let good = Image.save heap in
  match Image.load (String.sub good 0 (String.length good - 1)) with
  | exception Image.Image_error _ -> ()
  | _ -> Alcotest.fail "truncated image accepted"

(* A pre-built image guarding byte-compatibility of the format across
   refactorings of the codec.  Heap: array, vector (with NaN-free edge
   reals), bytes, tuple, module, a function with explicit binder stamps
   and derived attributes, two rows and a relation with one index. *)
let golden_hex =
  "544d4c494d473109010003032a060a70657273697374656e740001010405000000000000044002047a"
  ^ "0500000000000000800102040001feff0103030700037908012b0104016d010166070301060273713"
  ^ "550544d4c31040178026365026363012a0a0300a9460001aa460102ab46010903040800a946000800"
  ^ "a946000801aa46010802ab460100020b636f73745f6265666f72650b0a636f73745f6166746572030"
  ^ "1030203010601610103020302060162010501720207060707010000"

let of_hex s =
  let b = Bytes.create (String.length s / 2) in
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  done;
  Bytes.unsafe_to_string b

let test_golden_image () =
  let bytes = of_hex golden_hex in
  let heap = Image.load bytes in
  (* 9 golden slots + 1 index object rebuilt from the legacy relation's
     persisted field list *)
  check tint "size" 10 (Value.Heap.size heap);
  (match Value.Heap.get heap (Oid.of_int 0) with
  | Value.Array [| Value.Int 42; Value.Str "persistent"; Value.Unit |] -> ()
  | _ -> Alcotest.fail "golden array corrupted");
  (match Value.Heap.get heap (Oid.of_int 5) with
  | Value.Func fo ->
    check tbool "golden attrs" true
      (fo.Value.fo_attrs = [ "cost_before", 11; "cost_after", 3 ]);
    let ctx = Runtime.create heap in
    (match Machine.run_proc ctx (Value.Oidv (Oid.of_int 5)) [ Value.Int 6 ] with
    | Eval.Done (Value.Int 36) -> ()
    | o -> Alcotest.failf "golden function: %a" Eval.pp_outcome o)
  | _ -> Alcotest.fail "golden function corrupted");
  (match Value.Heap.get heap (Oid.of_int 8) with
  | Value.Relation rel -> check tint "golden index" 1 (List.length rel.Value.rel_indexes)
  | _ -> Alcotest.fail "golden relation corrupted");
  (* the rebuilt index answers lookups *)
  let ctx = Runtime.create heap in
  (match Tml_query.Rel.lookup ctx (Oid.of_int 8) ~field:0 (Literal.Int 1) with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "rebuilt golden index lost");
  (* resave upgrades the legacy relation to the paged REL1 layout (with
     the rebuilt index as a sibling object), after which the encoding is
     a fixpoint: load/save of the upgraded image is byte-identical *)
  let upgraded = Image.save heap in
  check tbool "legacy image upgraded on resave" false (String.equal upgraded bytes);
  check tbool "upgraded image is a save/load fixpoint" true
    (String.equal (Image.save (Image.load upgraded)) upgraded)

let test_file_roundtrip () =
  let heap = Value.Heap.create () in
  ignore (Value.Heap.alloc heap (Value.Array [| Value.Int 7 |]));
  let path = Filename.temp_file "tml_image_test" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Image.save_file heap path;
      let heap' = Image.load_file path in
      match Value.Heap.get heap' (Oid.of_int 0) with
      | Value.Array [| Value.Int 7 |] -> ()
      | _ -> Alcotest.fail "file roundtrip corrupted")

let () =
  Runtime.install ();
  Tml_query.Qprims.install ();
  Alcotest.run "tml_image"
    [
      ( "image",
        [
          Alcotest.test_case "all object kinds round trip" `Quick test_roundtrip_objects;
          Alcotest.test_case "functions survive" `Quick test_function_survives;
          Alcotest.test_case "bindings survive" `Quick test_bindings_survive;
          Alcotest.test_case "relation indexes rebuilt" `Quick test_relation_index_rebuilt;
          Alcotest.test_case "triggers persist" `Quick test_triggers_persist;
          Alcotest.test_case "live closures rejected" `Quick test_live_closure_rejected;
          Alcotest.test_case "corrupt images rejected" `Quick test_corrupt_image;
          Alcotest.test_case "golden image byte-compatible" `Quick test_golden_image;
          Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
        ] );
    ]
