(* Unit tests for the core TML rewrite rules (section 3) and the reduction
   pass. *)

open Tml_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let parse = Sexp.parse_app
let parse_v = Sexp.parse_value

let reduce ?rules a = Rewrite.reduce_app ?rules a

(* assert that [a] reduces to something α-equal to [b] *)
let reduces_to ?rules msg a b =
  let a' = reduce ?rules (parse a) in
  let b' = parse b in
  if not (Term.alpha_equal_by_name_app a' b') then
    Alcotest.failf "%s:@.%s@.reduced to@.%s@.expected@.%s" msg a (Sexp.print_app a')
      (Sexp.print_app b')

(* ------------------------------------------------------------------ *)
(* subst / remove / reduce (β)                                          *)
(* ------------------------------------------------------------------ *)

let test_beta_subst_trivial () =
  (* trivial values substitute even with multiple uses *)
  reduces_to "literal into two uses" "(cont(x) (k! x x) 5)" "(k! 5 5)";
  reduces_to "variable copy propagation" "(cont(x) (k! x) y)" "(k! y)";
  reduces_to "primitive as value" "(cont(f) (k! f) +)" "(k! +)"

let test_beta_single_use_abs () =
  (* an abstraction bound to a variable referenced exactly once is moved *)
  reduces_to "single-use abstraction inlined"
    "(cont(f!) (f! 1) cont(x) (k! x))" "(k! 1)"

let test_beta_multi_use_abs_blocked () =
  let a =
    parse "(cont(f) (f 1 ce! cont(t) (f t ce! cc!)) proc(x ce2! cc2!) (cc2! x))"
  in
  let stats = Rewrite.fresh_stats () in
  let a' = Rewrite.reduce_app ~stats a in
  (* the subst precondition blocks inlining a multi-use abstraction: the
     binding must survive *)
  check tbool "binding survives" true
    (match a'.Term.func with
    | Term.Abs _ -> true
    | _ -> false);
  check tint "no abstraction substitution" 0 stats.Rewrite.subst

let test_beta_remove_unused () =
  reduces_to "unused parameter struck out" "(cont(x y) (k! y) 5 6)" "(k! 6)";
  (* dropping an abstraction argument is sound: values cannot contain
     side-effecting calls *)
  reduces_to "unused abstraction dropped"
    "(cont(f g) (g! f) proc(x ce! cc!) (cc! x) 7)"
    "(g! proc(x ce! cc!) (cc! x))"

let test_beta_reduce_empty () =
  reduces_to "nullary application" "(cont() (k! 1))" "(k! 1)"

(* ------------------------------------------------------------------ *)
(* fold                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fold_arith () =
  reduces_to "addition folds" "(+ 1 2 ce! cc!)" "(cc! 3)";
  reduces_to "nested folds cascade" "(+ 1 2 ce! cont(t) (* t t ce! cc!))" "(cc! 9)";
  reduces_to "division by zero folds to the exception continuation"
    "(/ 1 0 ce! cc!)" "(ce! \"division by zero\")";
  reduces_to "modulo" "(% 7 3 ce! cc!)" "(cc! 1)"

let test_fold_overflow () =
  let max_s = string_of_int max_int in
  reduces_to "overflow folds to the exception continuation"
    (Printf.sprintf "(+ %s 1 ce! cc!)" max_s)
    "(ce! \"integer overflow\")";
  reduces_to "multiplication overflow"
    (Printf.sprintf "(* %s 2 ce! cc!)" max_s)
    "(ce! \"integer overflow\")";
  reduces_to "min_int / -1 overflow"
    (Printf.sprintf "(/ %d -1 ce! cc!)" min_int)
    "(ce! \"integer overflow\")"

let test_fold_identities () =
  reduces_to "x + 0" "(+ x 0 ce! cc!)" "(cc! x)";
  reduces_to "0 + x" "(+ 0 x ce! cc!)" "(cc! x)";
  reduces_to "x - 0" "(- x 0 ce! cc!)" "(cc! x)";
  reduces_to "x * 1" "(* x 1 ce! cc!)" "(cc! x)";
  reduces_to "x * 0" "(* x 0 ce! cc!)" "(cc! 0)";
  reduces_to "x / 1" "(/ x 1 ce! cc!)" "(cc! x)";
  reduces_to "x % 1" "(% x 1 ce! cc!)" "(cc! 0)"

let test_fold_comparisons () =
  reduces_to "1 < 2" "(< 1 2 k1! k2!)" "(k1!)";
  reduces_to "2 <= 1" "(<= 2 1 k1! k2!)" "(k2!)";
  reduces_to "x < x is false" "(< x x k1! k2!)" "(k2!)";
  reduces_to "x >= x is true" "(>= x x k1! k2!)" "(k1!)"

let test_fold_bits () =
  reduces_to "band" "(band 12 10 cc!)" "(cc! 8)";
  reduces_to "bor with zero" "(bor x 0 cc!)" "(cc! x)";
  reduces_to "bshl" "(bshl 3 4 cc!)" "(cc! 48)";
  reduces_to "bnot" "(bnot 0 cc!)" "(cc! -1)"

let test_fold_conversions () =
  reduces_to "char2int" "(char2int 'a' cc!)" "(cc! 97)";
  reduces_to "int2char wraps" "(int2char 353 cc!)" "(cc! 'a')";
  reduces_to "int2real" "(int2real 2 cc!)" "(cc! 2.0)";
  reduces_to "real2int" "(real2int 3.7 cc!)" "(cc! 3)"

let test_fold_reals () =
  reduces_to "f+" "(f+ 1.5 2.5 cc!)" "(cc! 4.0)";
  reduces_to "sqrt" "(sqrt 9.0 cc!)" "(cc! 3.0)";
  reduces_to "f< branches" "(f< 1.0 2.0 k1! k2!)" "(k1!)"

let test_fold_bools () =
  reduces_to "and lits" "(and true false cc!)" "(cc! false)";
  reduces_to "and true x" "(and true x cc!)" "(cc! x)";
  reduces_to "and false x short-circuits" "(and false x cc!)" "(cc! false)";
  reduces_to "or false x" "(or false x cc!)" "(cc! x)";
  reduces_to "not" "(not true cc!)" "(cc! false)"

let test_fold_case () =
  reduces_to "literal scrutinee picks branch" "(== 2 1 2 3 k1! k2! k3!)" "(k2!)";
  reduces_to "default branch" "(== 9 1 2 k1! k2! kd!)" "(kd!)";
  reduces_to "identical variables match" "(== x x k1! k2!)" "(k1!)";
  (* a variable tag before a matching literal blocks folding *)
  let a = parse "(== 2 y 2 k1! k2!)" in
  let a' = reduce a in
  check tbool "undecidable tag blocks fold" true
    (match a'.Term.func with
    | Term.Prim "==" -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* case-subst                                                           *)
(* ------------------------------------------------------------------ *)

let test_case_subst () =
  (* inside the branch selected by tag 1, v is known to be 1; the branch
     then folds *)
  reduces_to "case-subst enables folding"
    "(== v 1 cont() (+ v 1 ce! cc!) cont() (cc! 0))"
    "(== v 1 cont() (cc! 2) cont() (cc! 0))"

let test_case_subst_stats () =
  let stats = Rewrite.fresh_stats () in
  let a = parse "(== v 5 cont() (k! v) cont() (k! 0))" in
  let _ = Rewrite.reduce_app ~stats a in
  check tint "one case-subst" 1 stats.Rewrite.case_subst

(* ------------------------------------------------------------------ *)
(* η-reduce                                                             *)
(* ------------------------------------------------------------------ *)

let test_eta () =
  (match Rewrite.try_eta (parse_v "cont(x y) (k! x y)") with
  | Some (Term.Var id) -> check tbool "reduces to k" true (id.Ident.name = "k")
  | _ -> Alcotest.fail "η expected");
  (* parameter used in the function position value blocks η *)
  check tbool "self-application blocks η" true
    (Rewrite.try_eta (parse_v "cont(x) (x x)") = None);
  (* argument order must match exactly *)
  check tbool "swapped arguments block η" true
    (Rewrite.try_eta (parse_v "cont(x y) (k! y x)") = None);
  (* nullary η *)
  match Rewrite.try_eta (parse_v "cont() (k!)") with
  | Some (Term.Var _) -> ()
  | _ -> Alcotest.fail "nullary η expected"

let test_eta_not_on_special_prims () =
  check tbool "== is not exposed by η" true
    (Rewrite.try_eta (parse_v "cont(a b k1! k2!) (== a b k1! k2!)") = None)

let test_eta_end_to_end () =
  (* the return-forwarding continuation η-reduces, after which the whole
     wrapper procedure η-reduces to g itself *)
  reduces_to "η inside reduction cascades"
    "(f proc(x ce! k!) (g x ce! cont(t) (k! t)) ce! cc!)"
    "(f g ce! cc!)"

(* ------------------------------------------------------------------ *)
(* Y rules                                                              *)
(* ------------------------------------------------------------------ *)

let test_y_remove () =
  (* 'dead' is referenced by nobody else: struck out *)
  reduces_to "unused nest member removed"
    "(Y lambda(c0! live! dead! c!) (c! cont() (live! 1) cont(i) (k! i) cont(j) (dead! j)))"
    "(Y lambda(c0! live! c!) (c! cont() (live! 1) cont(i) (k! i)))"

let test_y_keep_mutual () =
  (* mutually recursive members survive *)
  let a =
    parse
      "(Y lambda(c0! even! odd! c!) (c! cont() (even! 4) cont(i) (<= i 0 cont() (k! 1) cont() \
       (- i 1 ce! cont(i2) (odd! i2))) cont(j) (<= j 0 cont() (k! 0) cont() (- j 1 ce! \
       cont(j2) (even! j2)))))"
  in
  let a' = reduce a in
  match a'.Term.args with
  | [ Term.Abs binder ] ->
    check tint "all parameters remain (c0, even, odd, c)" 4 (List.length binder.Term.params)
  | _ -> Alcotest.fail "Y application expected"

let test_y_reduce () =
  reduces_to "empty fixpoint reduces to the entry body"
    "(Y lambda(c0! c!) (c! cont() (k! 42)))" "(k! 42)";
  (* c0 referenced: no reduction *)
  let a = parse "(Y lambda(c0! c!) (c! cont() (c0!)))" in
  let a' = reduce a in
  check tbool "self-restarting loop kept" true
    (match a'.Term.func with
    | Term.Prim "Y" -> true
    | _ -> false)

let test_y_remove_then_reduce () =
  reduces_to "removal emptying the nest triggers Y-reduce"
    "(Y lambda(c0! dead! c!) (c! cont() (k! 5) cont(j) (dead! j)))" "(k! 5)"

(* ------------------------------------------------------------------ *)
(* The reduction pass as a whole                                        *)
(* ------------------------------------------------------------------ *)

let test_size_decrease () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 200 do
    let proc = Gen.proc2 rng ~size:25 in
    let reduced = Rewrite.reduce_value proc in
    check tbool "reduction never grows the tree" true
      (Term.size_value reduced <= Term.size_value proc)
  done

let test_wf_preservation () =
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 200 do
    let proc = Gen.proc2 rng ~size:25 in
    let reduced = Rewrite.reduce_value proc in
    match Wf.check_value reduced with
    | Ok () -> ()
    | Error es ->
      Alcotest.failf "reduction broke well-formedness:@.%s@.%s" (Sexp.print_value reduced)
        (String.concat "; " (List.map (fun e -> e.Wf.message) es))
  done

let test_constant_program () =
  (* an entire first-order computation over literals evaluates away *)
  reduces_to "program folds to its result"
    "(+ 1 2 ce! cont(a) (* a a ce! cont(b) (< b 10 cont() (k! b) cont() (+ b 1 ce! cont(c) \
     (k! c)))))"
    "(k! 9)"

let test_domain_rule_hook () =
  (* a domain rule is consulted and its applications counted *)
  let hits = ref 0 in
  let rule (a : Term.app) =
    match a.Term.func with
    | Term.Prim "size" ->
      incr hits;
      (match a.Term.args with
      | [ _; k ] -> Some (Term.app k [ Term.int 99 ])
      | _ -> None)
    | _ -> None
  in
  let stats = Rewrite.fresh_stats () in
  let a = parse "(size arr cc!)" in
  let a' = Rewrite.reduce_app ~stats ~rules:[ rule ] a in
  check tbool "rule applied" true (Term.alpha_equal_by_name_app a' (parse "(cc! 99)"));
  check tint "domain counter" 1 stats.Rewrite.domain;
  check tint "rule fired once" 1 !hits

let test_fuel_bound () =
  (* a pathological self-renaming domain rule is stopped by the fuel *)
  let rule (a : Term.app) =
    match a.Term.func with
    | Term.Prim "size" -> Some a
    | _ -> None
  in
  let a = parse "(size arr cc!)" in
  match Rewrite.reduce_app ~rules:[ rule ] ~max_steps:50 a with
  | exception Rewrite.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

let () =
  Primitives.install ();
  Alcotest.run "tml_rewrite"
    [
      ( "beta",
        [
          Alcotest.test_case "subst trivial values" `Quick test_beta_subst_trivial;
          Alcotest.test_case "single-use abstraction" `Quick test_beta_single_use_abs;
          Alcotest.test_case "multi-use abstraction blocked" `Quick
            test_beta_multi_use_abs_blocked;
          Alcotest.test_case "remove unused" `Quick test_beta_remove_unused;
          Alcotest.test_case "reduce nullary" `Quick test_beta_reduce_empty;
        ] );
      ( "fold",
        [
          Alcotest.test_case "arithmetic" `Quick test_fold_arith;
          Alcotest.test_case "overflow" `Quick test_fold_overflow;
          Alcotest.test_case "algebraic identities" `Quick test_fold_identities;
          Alcotest.test_case "comparisons" `Quick test_fold_comparisons;
          Alcotest.test_case "bit operations" `Quick test_fold_bits;
          Alcotest.test_case "conversions" `Quick test_fold_conversions;
          Alcotest.test_case "reals" `Quick test_fold_reals;
          Alcotest.test_case "booleans" `Quick test_fold_bools;
          Alcotest.test_case "case analysis" `Quick test_fold_case;
        ] );
      ( "case-subst",
        [
          Alcotest.test_case "substitutes tag in branch" `Quick test_case_subst;
          Alcotest.test_case "statistics" `Quick test_case_subst_stats;
        ] );
      ( "eta",
        [
          Alcotest.test_case "basic" `Quick test_eta;
          Alcotest.test_case "special primitives protected" `Quick
            test_eta_not_on_special_prims;
          Alcotest.test_case "within reduction" `Quick test_eta_end_to_end;
        ] );
      ( "y",
        [
          Alcotest.test_case "Y-remove" `Quick test_y_remove;
          Alcotest.test_case "mutual recursion kept" `Quick test_y_keep_mutual;
          Alcotest.test_case "Y-reduce" `Quick test_y_reduce;
          Alcotest.test_case "remove then reduce" `Quick test_y_remove_then_reduce;
        ] );
      ( "reduction-pass",
        [
          Alcotest.test_case "size never grows" `Quick test_size_decrease;
          Alcotest.test_case "well-formedness preserved" `Quick test_wf_preservation;
          Alcotest.test_case "constant program" `Quick test_constant_program;
          Alcotest.test_case "domain rule hook" `Quick test_domain_rule_hook;
          Alcotest.test_case "fuel bound" `Quick test_fuel_bound;
        ] );
    ]
