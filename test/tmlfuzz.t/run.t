The differential fuzzer, end to end.  A short smoke campaign: every seed
runs through all four oracles (differential execution, query differential,
PTML round trip, durable store reopen) with pass-level translation
validation enabled in every optimizing engine.  Skips are query programs
that install closure-valued triggers: such a heap is specified to be
rejected by the persistent store, not a failure.

  $ tmlfuzz run --count 25
  tmlfuzz: oracles [diff query ptml store purity], seeds 0..24, validation on
  executed 125 cases: 120 agreed, 5 skipped, 0 failed

Campaign statistics as JSON (for longer, scripted campaigns):

  $ tmlfuzz run --count 10 --oracle diff --oracle ptml --json
  {"executed":20,"agreed":20,"skipped":0,"failed":0,"failures":[]}

Corpus entries are small text files: headers plus the S-expression of the
generated procedure.  `replay` re-runs one through its oracle, `show`
pretty-prints it.

  $ cat > entry.corpus <<'EOF'
  > ; oracle: diff
  > ; kind: diff
  > ; seed: 0
  > ; a: 3
  > ; b: 4
  > (hold proc(a b ce! cc!) (+ a b ce! cont(t) (cc! t)))
  > EOF

  $ tmlfuzz replay entry.corpus
  entry.corpus: ok (diff)

  $ tmlfuzz show entry.corpus
  oracle: diff
  inputs: a=3 b=4
  proc(a_2 b_3 ce_4 cc_5) (+ a_2 b_3 ce_4 cont(t_6) (cc_5 t_6))

A deliberately broken entry (the machine and the tree evaluator cannot
disagree on this program, so we check the failure path with a malformed
file instead):

  $ echo "garbage" > bad.corpus
  $ tmlfuzz replay bad.corpus
  bad.corpus: unreadable entry: corpus entry: missing '; oracle:' header
  [1]
