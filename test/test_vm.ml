(* Tests for the execution substrate: the tree-walking evaluator, the
   abstract machine (compiler + interpreter), the runtime primitive
   implementations, the handler stack, fuel accounting, and the heap. *)

open Tml_core
open Tml_vm

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

type engine = [ `Tree | `Machine ]

let engines : (string * engine) list = [ "tree", `Tree; "machine", `Machine ]

(* Run a closed proc (given as TML source) on the chosen engine through a
   store function object, returning the outcome and the context. *)
let run_src ?(fuel = 1_000_000) (engine : engine) src args =
  Runtime.install ();
  let proc = Sexp.parse_value src in
  (match Wf.check_value proc with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "test program ill-formed: %s"
      (String.concat "; " (List.map (fun e -> e.Wf.message) es)));
  let heap = Value.Heap.create () in
  let ctx = Runtime.create ~fuel heap in
  let oid = Value.Heap.alloc_func heap ~name:"test" proc in
  let outcome =
    match engine with
    | `Tree -> Eval.run_proc ctx (Value.Oidv oid) args
    | `Machine -> Machine.run_proc ctx (Value.Oidv oid) args
  in
  outcome, ctx

let expect_done engine src args expected =
  let outcome, _ = run_src engine src args in
  match outcome with
  | Eval.Done v ->
    check tbool
      (Printf.sprintf "%s = %s" src (Value.to_string expected))
      true (Value.identical v expected)
  | o -> Alcotest.failf "%s: expected Done, got %a" src Eval.pp_outcome o

let expect_raised engine src args expected =
  let outcome, _ = run_src engine src args in
  match outcome with
  | Eval.Raised v -> check tbool src true (Value.identical v expected)
  | o -> Alcotest.failf "%s: expected Raised, got %a" src Eval.pp_outcome o

let on_both f = List.iter (fun (_, engine) -> f engine) engines

(* ------------------------------------------------------------------ *)
(* Basics                                                               *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  on_both (fun e ->
      expect_done e "proc(a b ce! cc!) (+ a b ce! cc!)" [ Value.Int 40; Value.Int 2 ]
        (Value.Int 42);
      expect_done e "proc(a b ce! cc!) (* a b ce! cont(t) (- t 1 ce! cc!))"
        [ Value.Int 6; Value.Int 7 ] (Value.Int 41);
      expect_raised e "proc(a b ce! cc!) (/ a b ce! cc!)" [ Value.Int 1; Value.Int 0 ]
        (Value.Str "division by zero");
      expect_raised e "proc(a b ce! cc!) (+ a b ce! cc!)"
        [ Value.Int max_int; Value.Int 1 ] (Value.Str "integer overflow"))

let test_comparisons_and_case () =
  on_both (fun e ->
      expect_done e "proc(a b ce! cc!) (< a b cont() (cc! 1) cont() (cc! 0))"
        [ Value.Int 1; Value.Int 2 ] (Value.Int 1);
      expect_done e "proc(a b ce! cc!) (< a b cont() (cc! 1) cont() (cc! 0))"
        [ Value.Int 5; Value.Int 2 ] (Value.Int 0);
      expect_done e
        "proc(x u ce! cc!) (== x 1 2 cont() (cc! 'a') cont() (cc! 'b') cont() (cc! 'z'))"
        [ Value.Int 2; Value.Unit ] (Value.Char 'b');
      expect_done e
        "proc(x u ce! cc!) (== x 1 2 cont() (cc! 'a') cont() (cc! 'b') cont() (cc! 'z'))"
        [ Value.Int 7; Value.Unit ] (Value.Char 'z'))

let test_reals_chars_bools () =
  on_both (fun e ->
      expect_done e "proc(a b ce! cc!) (f* a b cont(t) (sqrt t cc!))"
        [ Value.Real 2.0; Value.Real 8.0 ] (Value.Real 4.0);
      expect_done e "proc(c u ce! cc!) (char2int c cont(i) (+ i 1 ce! cont(j) (int2char j cc!)))"
        [ Value.Char 'a'; Value.Unit ] (Value.Char 'b');
      expect_done e "proc(a b ce! cc!) (and a b cont(r) (not r cc!))"
        [ Value.Bool true; Value.Bool true ] (Value.Bool false);
      expect_done e "proc(a b ce! cc!) (bxor a b cc!)" [ Value.Int 12; Value.Int 10 ]
        (Value.Int 6))

let test_strings () =
  on_both (fun e ->
      expect_done e "proc(a b ce! cc!) (sconcat a b cc!)"
        [ Value.Str "foo"; Value.Str "bar" ] (Value.Str "foobar");
      expect_done e "proc(s u ce! cc!) (slen s cc!)" [ Value.Str "hello"; Value.Unit ]
        (Value.Int 5);
      expect_done e "proc(s i ce! cc!) (s[] s i cc!)" [ Value.Str "abc"; Value.Int 1 ]
        (Value.Char 'b');
      expect_done e "proc(s u ce! cc!) (substr s 1 2 cc!)" [ Value.Str "abcd"; Value.Unit ]
        (Value.Str "bc");
      expect_done e "proc(c u ce! cc!) (char2str c cc!)" [ Value.Char 'x'; Value.Unit ]
        (Value.Str "x");
      expect_done e "proc(n u ce! cc!) (int2str n cc!)" [ Value.Int (-42); Value.Unit ]
        (Value.Str "-42");
      expect_done e "proc(s u ce! cc!) (str2int s ce! cc!)" [ Value.Str "17"; Value.Unit ]
        (Value.Int 17);
      expect_raised e "proc(s u ce! cc!) (str2int s ce! cc!)" [ Value.Str "xyz"; Value.Unit ]
        (Value.Str "not an integer: xyz");
      expect_done e "proc(a b ce! cc!) (scmp a b cc!)" [ Value.Str "a"; Value.Str "b" ]
        (Value.Int (-1));
      let outcome, _ =
        run_src e "proc(s u ce! cc!) (s[] s 9 cc!)" [ Value.Str "ab"; Value.Unit ]
      in
      match outcome with
      | Eval.Fault _ -> ()
      | o -> Alcotest.failf "expected string index fault, got %a" Eval.pp_outcome o)

let test_string_folds () =
  (* the meta-evaluations agree with the runtime *)
  let check_fold src expected =
    let reduced = Rewrite.reduce_app (Sexp.parse_app src) in
    if not (Term.alpha_equal_by_name_app reduced (Sexp.parse_app expected)) then
      Alcotest.failf "%s reduced to %s" src (Sexp.print_app reduced)
  in
  check_fold "(sconcat \"ab\" \"cd\" cc!)" "(cc! \"abcd\")";
  check_fold "(sconcat \"\" x cc!)" "(cc! x)";
  check_fold "(slen \"hello\" cc!)" "(cc! 5)";
  check_fold "(s[] \"abc\" 0 cc!)" "(cc! 'a')";
  check_fold "(substr \"abcd\" 1 2 cc!)" "(cc! \"bc\")";
  check_fold "(str2int \"42\" ce! cc!)" "(cc! 42)";
  check_fold "(str2int \"zz\" ce! cc!)" "(ce! \"not an integer: zz\")";
  check_fold "(int2str 7 cc!)" "(cc! \"7\")";
  check_fold "(scmp \"a\" \"a\" cc!)" "(cc! 0)"

let test_y_loop () =
  (* sum 1..n via the canonical Y shape *)
  let src =
    "proc(n z ce! cc!) (Y lambda(c0! loop! c!) (c! cont() (loop! n 0) cont(i acc) (<= i 0 \
     cont() (cc! acc) cont() (+ acc i ce! cont(a2) (- i 1 ce! cont(i2) (loop! i2 a2))))))"
  in
  on_both (fun e ->
      expect_done e src [ Value.Int 10; Value.Unit ] (Value.Int 55);
      expect_done e src [ Value.Int 0; Value.Unit ] (Value.Int 0))

let test_mutual_recursion () =
  (* even/odd via a two-member nest *)
  let src =
    "proc(n z ce! cc!) (Y lambda(c0! even! odd! c!) (c! cont() (even! n) cont(i) (<= i 0 \
     cont() (cc! true) cont() (- i 1 ce! cont(i2) (odd! i2))) cont(j) (<= j 0 cont() (cc! \
     false) cont() (- j 1 ce! cont(j2) (even! j2)))))"
  in
  on_both (fun e ->
      expect_done e src [ Value.Int 10; Value.Unit ] (Value.Bool true);
      expect_done e src [ Value.Int 7; Value.Unit ] (Value.Bool false))

(* ------------------------------------------------------------------ *)
(* Arrays, vectors, bytes                                               *)
(* ------------------------------------------------------------------ *)

let test_arrays () =
  on_both (fun e ->
      expect_done e
        "proc(n v ce! cc!) (new n v cont(a) ([:=] a 2 99 cont(u) ([] a 2 cont(x) (size a \
         cont(s) (+ x s ce! cc!)))))"
        [ Value.Int 5; Value.Int 7 ] (Value.Int 104);
      expect_done e
        "proc(x y ce! cc!) (array x y x cont(a) (size a cc!))"
        [ Value.Int 1; Value.Int 2 ] (Value.Int 3);
      expect_done e
        "proc(x y ce! cc!) (vector x y cont(v) ([] v 1 cc!))"
        [ Value.Int 10; Value.Int 20 ] (Value.Int 20))

let test_array_faults () =
  on_both (fun e ->
      let outcome, _ =
        run_src e "proc(n v ce! cc!) (new n v cont(a) ([] a 9 cc!))"
          [ Value.Int 3; Value.Int 0 ]
      in
      match outcome with
      | Eval.Fault msg -> check tbool "out of bounds faults" true (String.length msg > 0)
      | o -> Alcotest.failf "expected fault, got %a" Eval.pp_outcome o)

let test_move () =
  on_both (fun e ->
      expect_done e
        "proc(x y ce! cc!) (array 1 2 3 4 cont(a) (new 4 0 cont(b) (move a 1 b 0 2 cont(u) \
         ([] b 1 cc!))))"
        [ Value.Unit; Value.Unit ] (Value.Int 3))

let test_bytes () =
  on_both (fun e ->
      expect_done e
        "proc(n v ce! cc!) (bnew n v cont(b) (b[:=] b 0 65 cont(u) (b[] b 0 cont(x) (bsize b \
         cont(s) (+ x s ce! cc!)))))"
        [ Value.Int 3; Value.Int 0 ] (Value.Int 68))

(* ------------------------------------------------------------------ *)
(* Exceptions: lexical ce and the handler stack                         *)
(* ------------------------------------------------------------------ *)

let test_lexical_exceptions () =
  on_both (fun e ->
      (* installing a new ce catches the callee's exception *)
      expect_done e
        "proc(a b ce! cc!) (cont(h!) (/ a b h! cc!) cont(x) (cc! -1))"
        [ Value.Int 1; Value.Int 0 ] (Value.Int (-1)))

let test_handler_stack () =
  on_both (fun e ->
      (* pushHandler installs a dynamic handler; raise reaches it *)
      expect_done e
        "proc(a b ce! cc!) (pushHandler cont(x) (cc! x) cont() (raise \"boom\"))"
        [ Value.Unit; Value.Unit ] (Value.Str "boom");
      (* without any handler, raise terminates the program *)
      expect_raised e "proc(a b ce! cc!) (raise \"unhandled\")" [ Value.Unit; Value.Unit ]
        (Value.Str "unhandled");
      (* popHandler removes the innermost handler *)
      expect_done e
        "proc(a b ce! cc!) (pushHandler cont(x) (cc! 1) cont() (pushHandler cont(y) (cc! 2) \
         cont() (popHandler cont() (raise \"z\"))))"
        [ Value.Unit; Value.Unit ] (Value.Int 1))

(* ------------------------------------------------------------------ *)
(* Higher-order behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_first_class_procs () =
  on_both (fun e ->
      (* a procedure passed as a value and applied twice *)
      expect_done e
        "proc(a b ce! cc!) (cont(twice) (twice a ce! cont(t) (twice t ce! cc!)) proc(x ce2! \
         cc2!) (+ x b ce2! cc2!))"
        [ Value.Int 1; Value.Int 10 ] (Value.Int 21))

let test_prim_as_value () =
  on_both (fun e ->
      (* η-reduced: a primitive flows into a call position *)
      expect_done e
        "proc(a b ce! cc!) (cont(f) (f a b ce! cc!) +)"
        [ Value.Int 20; Value.Int 22 ] (Value.Int 42))

let test_ccall_output () =
  on_both (fun e ->
      let outcome, ctx =
        run_src e
          "proc(a b ce! cc!) (ccall \"print_int\" a ce! cont(u) (ccall \"newline\" ce! \
           cont(v) (cc! nil)))"
          [ Value.Int 42; Value.Unit ]
      in
      (match outcome with
      | Eval.Done Value.Unit -> ()
      | o -> Alcotest.failf "expected Done nil, got %a" Eval.pp_outcome o);
      check tstring "output captured" "42\n" (Buffer.contents ctx.Runtime.out))

(* ------------------------------------------------------------------ *)
(* Engine agreement, fuel, steps                                        *)
(* ------------------------------------------------------------------ *)

let test_fuel () =
  (* an infinite loop stops with No_fuel *)
  let src =
    "proc(a b ce! cc!) (Y lambda(c0! spin! c!) (c! cont() (spin! 0) cont(i) (spin! i)))"
  in
  on_both (fun e ->
      let outcome, _ = run_src ~fuel:5_000 e src [ Value.Unit; Value.Unit ] in
      match outcome with
      | Eval.No_fuel -> ()
      | o -> Alcotest.failf "expected No_fuel, got %a" Eval.pp_outcome o)

let test_steps_counted () =
  let _, ctx = run_src `Machine "proc(a b ce! cc!) (+ a b ce! cc!)" [ Value.Int 1; Value.Int 2 ] in
  check tbool "steps accounted" true (ctx.Runtime.steps > 0)

let test_engines_agree_generated () =
  let rng = Random.State.make [| 2026 |] in
  for _ = 1 to 150 do
    let proc = Gen.proc2 rng ~size:30 in
    let o1, _ = run_src `Tree (Sexp.print_value proc) [ Value.Int 3; Value.Int 4 ] in
    ignore o1;
    (* run via the value directly to avoid reparsing *)
    let heap1 = Value.Heap.create () in
    let ctx1 = Runtime.create ~fuel:1_000_000 heap1 in
    let oid1 = Value.Heap.alloc_func heap1 ~name:"g" proc in
    let t = Eval.run_proc ctx1 (Value.Oidv oid1) [ Value.Int 3; Value.Int 4 ] in
    let heap2 = Value.Heap.create () in
    let ctx2 = Runtime.create ~fuel:1_000_000 heap2 in
    let oid2 = Value.Heap.alloc_func heap2 ~name:"g" proc in
    let m = Machine.run_proc ctx2 (Value.Oidv oid2) [ Value.Int 3; Value.Int 4 ] in
    if not (Eval.outcome_equal t m) then
      Alcotest.failf "engines disagree:@.%s@.tree: %a@.machine: %a" (Sexp.print_value proc)
        Eval.pp_outcome t Eval.pp_outcome m
  done

(* ------------------------------------------------------------------ *)
(* Compiler specifics                                                   *)
(* ------------------------------------------------------------------ *)

let test_compile_shapes () =
  let proc = Sexp.parse_value "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))" in
  match proc with
  | Term.Abs abs ->
    let unit_code, frees = Compile.compile_abs ~name:"inc" abs in
    check tint "closed" 0 (List.length frees);
    check tbool "one function (continuation inlined as a block)" true
      (Array.length unit_code.Instr.funcs = 1);
    (* serialization round trip *)
    let bytes = Instr.encode_unit unit_code in
    let decoded = Instr.decode_unit bytes in
    check tstring "codec roundtrip" (Instr.encode_unit decoded) bytes
  | _ -> Alcotest.fail "expected abs"

let test_compile_free_layout () =
  let proc = Sexp.parse_value "proc(x ce! cc!) (globalfn x ce! cc!)" in
  match proc with
  | Term.Abs abs ->
    let _, frees = Compile.compile_abs ~name:"caller" abs in
    check tint "one free identifier" 1 (List.length frees);
    check tstring "the global" "globalfn" (List.hd frees).Ident.name
  | _ -> Alcotest.fail "expected abs"

let test_heap () =
  let heap = Value.Heap.create () in
  let o1 = Value.Heap.alloc heap (Value.Array [| Value.Int 1 |]) in
  let o2 = Value.Heap.alloc heap (Value.Tuple [| Value.Int 2 |]) in
  check tbool "distinct oids" false (Oid.equal o1 o2);
  (match Value.Heap.get heap o1 with
  | Value.Array [| Value.Int 1 |] -> ()
  | _ -> Alcotest.fail "wrong object");
  check tint "size" 2 (Value.Heap.size heap);
  Value.Heap.set heap o1 (Value.Array [| Value.Int 9 |]);
  (match Value.Heap.get heap o1 with
  | Value.Array [| Value.Int 9 |] -> ()
  | _ -> Alcotest.fail "set failed");
  check tbool "dangling get_opt" true (Value.Heap.get_opt heap (Oid.of_int 99) = None);
  (* growth *)
  for i = 0 to 199 do
    ignore (Value.Heap.alloc heap (Value.Array [| Value.Int i |]))
  done;
  check tint "grown" 202 (Value.Heap.size heap)

(* ------------------------------------------------------------------ *)
(* Tiered execution: deoptimization stress                              *)
(* ------------------------------------------------------------------ *)

(* A stored function reading through an R-value binding to a store
   array — the canonical tier dependency.  [data] stays free in the
   stored term and is linked as a binding, exactly like the persistent
   engines do. *)
let tier_reader_proc () = Sexp.parse_value "proc(i ce! cc!) ([] data i cc!)"

let tier_free_ident proc =
  match Ident.Set.elements (Term.free_vars_value proc) with
  | [ id ] -> id
  | ids -> Alcotest.failf "expected one free identifier, got %d" (List.length ids)

let tier_store_reader heap proc data_id =
  let arr = Value.Heap.alloc heap (Value.Array [| Value.Int 7; Value.Int 8 |]) in
  let oid = Value.Heap.alloc_func heap ~name:"reader" proc in
  (match Value.Heap.get heap oid with
  | Value.Func fo -> fo.Value.fo_bindings <- [ data_id, Value.Oidv arr ]
  | _ -> assert false);
  arr, oid

let tier_call ctx oid i =
  match Machine.run_proc ctx (Value.Oidv oid) [ Value.Int i ] with
  | Eval.Done v -> v
  | o -> Alcotest.failf "tier call: expected Done, got %a" Eval.pp_outcome o

(* Promote a hot function, mutate the store object it depends on
   mid-loop, and require: the update hook deoptimizes it (tier_deopt
   increments, the tier run counter freezes), execution falls back to
   the machine, and the whole observed sequence is identical to an
   unpromoted run. *)
let test_tier_deopt_on_mutation () =
  Runtime.install ();
  let proc = tier_reader_proc () in
  let data_id = tier_free_ident proc in
  let run_sequence ~tier =
    Tierup.clear ();
    let heap = Value.Heap.create () in
    let ctx = Runtime.create ~fuel:1_000_000 heap in
    let arr, oid = tier_store_reader heap proc data_id in
    if tier then check tbool "promoted" true (Tierup.force_promote ctx oid);
    let before = [ tier_call ctx oid 0; tier_call ctx oid 1; tier_call ctx oid 0 ] in
    (* mid-loop mutation of the dependency through the heap *)
    Value.Heap.set heap arr (Value.Array [| Value.Int 100; Value.Int 200 |]);
    let after = [ tier_call ctx oid 0; tier_call ctx oid 1 ] in
    before @ after
  in
  let s0 = Tierup.stats () in
  let d0 = s0.Tierup.deopts and r0 = s0.Tierup.runs in
  let tiered = run_sequence ~tier:true in
  let s1 = Tierup.stats () in
  check tint "mutation deoptimized the reader" (d0 + 1) s1.Tierup.deopts;
  check tint "tier ran only before the mutation" (r0 + 3) s1.Tierup.runs;
  check tint "nothing stays promoted" 0 (Tierup.promoted_count ());
  let plain = run_sequence ~tier:false in
  let s2 = Tierup.stats () in
  check tint "unpromoted run never enters the tier" s1.Tierup.runs s2.Tierup.runs;
  check tbool "tiered sequence identical to the unpromoted run" true
    (List.for_all2 Value.identical tiered plain);
  check tbool "mutation visible through the fallback" true
    (List.nth tiered 3 = Value.Int 100 && List.nth tiered 4 = Value.Int 200);
  Tierup.clear ()

(* The stale-promotion defense across a durable reopen: a fresh heap
   reuses the same OID space, so a surviving tier entry must fail the
   heap-identity check, deoptimize, and fall back to the machine with
   identical results. *)
let test_tier_deopt_on_durable_reopen () =
  Runtime.install ();
  Tierup.clear ();
  let proc = tier_reader_proc () in
  let data_id = tier_free_ident proc in
  let path = Filename.temp_file "tml_tier" ".tmlstore" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      Tierup.clear ())
    (fun () ->
      let ps = Pstore.create ~fsync:false path in
      let heap = Pstore.heap ps in
      let ctx = Runtime.create ~fuel:1_000_000 heap in
      let _, oid = tier_store_reader heap proc data_id in
      check tbool "promoted" true (Tierup.force_promote ctx oid);
      let first = tier_call ctx oid 1 in
      check tbool "tiered read" true (Value.identical first (Value.Int 8));
      ignore (Pstore.commit ~root:oid ps);
      Pstore.close ps;
      (* the stale promotion is still installed; reopen builds a new heap *)
      check tbool "entry survives close" true (Tierup.promoted_count () > 0);
      let ps2 = Pstore.open_ ~fsync:false path in
      Fun.protect
        ~finally:(fun () -> Pstore.close ps2)
        (fun () ->
          let ctx2 = Runtime.create ~fuel:1_000_000 (Pstore.heap ps2) in
          let s0 = Tierup.stats () in
          let d0 = s0.Tierup.deopts and r0 = s0.Tierup.runs in
          let again = tier_call ctx2 oid 1 in
          check tbool "identical result after reopen" true
            (Value.identical again (Value.Int 8));
          let s1 = Tierup.stats () in
          check tint "heap-identity deopt fired" (d0 + 1) s1.Tierup.deopts;
          check tint "no tier runs in the reopened world" r0 s1.Tierup.runs;
          check tint "stale entry dropped" 0 (Tierup.promoted_count ())))

let test_identical () =
  check tbool "ints" true (Value.identical (Value.Int 3) (Value.Int 3));
  check tbool "int/real differ" false (Value.identical (Value.Int 3) (Value.Real 3.0));
  check tbool "strings by content" true (Value.identical (Value.Str "ab") (Value.Str "ab"));
  check tbool "oids" true
    (Value.identical (Value.Oidv (Oid.of_int 1)) (Value.Oidv (Oid.of_int 1)));
  check tbool "nan reflexive" true (Value.identical (Value.Real Float.nan) (Value.Real Float.nan))

let () =
  Runtime.install ();
  Alcotest.run "tml_vm"
    [
      ( "basics",
        [
          Alcotest.test_case "arithmetic and exceptions" `Quick test_arith;
          Alcotest.test_case "comparisons and case" `Quick test_comparisons_and_case;
          Alcotest.test_case "reals, chars, bools, bits" `Quick test_reals_chars_bools;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "string folds" `Quick test_string_folds;
          Alcotest.test_case "Y loop" `Quick test_y_loop;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        ] );
      ( "store",
        [
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "bounds faults" `Quick test_array_faults;
          Alcotest.test_case "block move" `Quick test_move;
          Alcotest.test_case "byte arrays" `Quick test_bytes;
          Alcotest.test_case "heap" `Quick test_heap;
          Alcotest.test_case "object identity" `Quick test_identical;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "lexical continuations" `Quick test_lexical_exceptions;
          Alcotest.test_case "handler stack" `Quick test_handler_stack;
        ] );
      ( "higher-order",
        [
          Alcotest.test_case "first-class procedures" `Quick test_first_class_procs;
          Alcotest.test_case "primitives as values" `Quick test_prim_as_value;
          Alcotest.test_case "ccall and output capture" `Quick test_ccall_output;
        ] );
      ( "engines",
        [
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel;
          Alcotest.test_case "step accounting" `Quick test_steps_counted;
          Alcotest.test_case "agreement on generated programs" `Quick
            test_engines_agree_generated;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "shapes and codec" `Quick test_compile_shapes;
          Alcotest.test_case "free identifier layout" `Quick test_compile_free_layout;
        ] );
      ( "tier",
        [
          Alcotest.test_case "deopt on store mutation" `Quick test_tier_deopt_on_mutation;
          Alcotest.test_case "deopt across durable reopen" `Quick
            test_tier_deopt_on_durable_reopen;
        ] );
    ]
