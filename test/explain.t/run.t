Optimization provenance end to end: the compiler, the session, and a
durable reopen can all answer "why does this code look the way it does".

Static compilation: tmlc dump --explain prints each definition's
derivation log (rule, local size/cost deltas, rewrite site) next to its
TML.  --explain implies -O 2.

  $ cat > sq.tl <<'EOF'
  > let sq(x: Int): Int = x * x
  > do io.print_int(sq(3)) end
  > EOF
  $ tmlc dump sq.tl --explain --def sq
  === sq ===
  proc(x_316 ce_317 cc_318) (intlib.mul_319 x_316 x_316 ce_317 cc_318)
  
  sq: derivation (1 step, size -4, cost -3):
      1. eta                        -4 size   -3 cost  at (proc/1 ...)
  
  

A live session records provenance for every reflective optimization;
:explain reads it back.

  $ tmlsh <<'IN'
  > let double(x: Int): Int = x * 2
  > :optimize double
  > :explain double
  > :open s.tmlstore
  > :commit
  > :quit
  > IN
  defined double
  optimized double: static cost 9 -> 3, 1 calls inlined
  double: derivation (4 steps, size -4, cost -6):
      1. reflect.inline-oid        +14 size   +6 cost  at (<oid 0x000002> ...)  [stored function intlib.mul]
      2. beta                      -10 size   -6 cost  at (proc/4 ...)
      3. beta                       -4 size   -3 cost  at (proc/1 ...)
      4. eta                        -4 size   -3 cost  at (proc/1 ...)
  
  new store s.tmlstore (committed 55 objects)
  committed 5 objects to s.tmlstore

The derivation is persistent: a fresh process restores the store and
explains the function without re-optimizing it.

  $ tmlsh <<'IN'
  > :open s.tmlstore
  > :explain double
  > :quit
  > IN
  restored session from s.tmlstore (55 objects, faulted on demand)
  double: derivation (4 steps, size -4, cost -6):
      1. reflect.inline-oid        +14 size   +6 cost  at (<oid 0x000002> ...)  [stored function intlib.mul]
      2. beta                      -10 size   -6 cost  at (proc/4 ...)
      3. beta                       -4 size   -3 cost  at (proc/1 ...)
      4. eta                        -4 size   -3 cost  at (proc/1 ...)
  

Re-optimizing after a reopen finds nothing left to do — and the
function still carries its original derivation rather than losing it to
the no-op run.

  $ tmlsh <<'IN'
  > :open s.tmlstore
  > :optimize double
  > :explain double
  > :quit
  > IN
  restored session from s.tmlstore (55 objects, faulted on demand)
  optimized double: static cost 3 -> 3, 0 calls inlined
  double: derivation (4 steps, size -4, cost -6):
      1. reflect.inline-oid        +14 size   +6 cost  at (<oid 0x000002> ...)  [stored function intlib.mul]
      2. beta                      -10 size   -6 cost  at (proc/4 ...)
      3. beta                       -4 size   -3 cost  at (proc/1 ...)
      4. eta                        -4 size   -3 cost  at (proc/1 ...)
  

:trace captures structured events into an in-memory ring; the dump is a
Chrome trace document.

  $ tmlsh <<'IN' > trace_session.out
  > :trace on
  > let triple(x: Int): Int = x * 3
  > triple(5)
  > :trace dump t.json
  > :quit
  > IN
  $ grep -c traceEvents t.json
  1
  $ grep -o '"cat":"vm"' t.json | head -1
  "cat":"vm"
