tmllint reports every documented diagnostic class on bad.tl — unused and
shadowed bindings, dead code after reduction (both the TL constant-condition
form and the TML dead-binding form), discarded non-unit results, and writes
through a selection the optimizer would otherwise treat as constant:

  $ tmllint bad.tl
  bad.tl:11:3: [dead-code] f: 1 dead binding(s) deleted by reduction
  bad.tl:11:3: [unused-binding] binding waste is never used
  bad.tl:12:3: [unused-binding] binding helper is never used
  bad.tl:13:3: [shadowed-binding] binding n shadows an earlier binding of the same name
  bad.tl:14:6: [dead-code] condition is constantly true; the else branch is unreachable after reduction
  bad.tl:19:4: [discarded-result] expression result of type Int is discarded
  bad.tl:20:9: [dead-code] loop condition is constantly false; the body is unreachable
  bad.tl:26:3: [aliased-mutation] h: 1 constant-true selection(s) whose result may be written through; the optimizer keeps the copy
  8 diagnostics

Without --strict the exit status is zero even with diagnostics; with it the
tool exits 2:

  $ tmllint bad.tl > /dev/null; echo $?
  0
  $ tmllint --strict bad.tl > /dev/null; echo $?
  2

Machine-readable output:

  $ tmllint --json bad.tl | tr ',' '\n' | grep -c '"class"'
  8

The diagnostic-rich program is still a correct program — it type-checks and
runs (9 = g() + h() = 7 + 2):

  $ tmlc run bad.tl | sed '$d'
  9

The TML-level diagnostics also work on a persistent store image, where no
source positions exist:

  $ tmlc save bad.tl bad.img > /dev/null
  $ tmllint --image bad.img
  bad.img:0:0: [aliased-mutation] h: 1 constant-true selection(s) whose result may be written through; the optimizer keeps the copy
  bad.img:0:0: [dead-code] f: 1 dead binding(s) deleted by reduction
  2 diagnostics

The shipped example programs and the TL standard library are lint-clean
under --strict (this is the @lint alias's check):

  $ tmllint --strict --stdlib ../../examples/tl/*.tl
  0 diagnostics

The rule audit lists every registered rewrite rule with its dispatch heads
and verification verdict: declarative rules pass the static checker and
their derived proof obligation, store-aware closure rules defer to the
oracle battery:

  $ tmllint --rules
  reflect.store-fold         ([] …),(size …)    unsupported: store-aware closure rule: verified by the oracle battery itself
  reflect.inline-oid         (oid …)              unsupported: store-aware closure rule: verified by the oracle battery itself
  reflect.inline-query-arg   (select …),(project …),(exists …),(foreach …),(sum …),(minagg …),(maxagg …),(join …) unsupported: store-aware closure rule: verified by the oracle battery itself
  q.merge-select             (select …)           proved (12 redexes)
  q.merge-project            (project …)          proved (12 redexes)
  q.constant-select          (select …)           proved (12 redexes)
  q.constant-select-empty    (select …)           proved (12 redexes)
  q.trivial-exists           (exists …)           proved (12 redexes)
  q.select-union             (union …)            proved (12 redexes)
  q.distinct-distinct        (distinct …)         proved (12 redexes)
  q.select-before-distinct   (distinct …)         proved (12 redexes)
  q.join-order               (join …)             unsupported: store-aware closure rule: verified by the oracle battery itself
  q.index-join               (join …)             unsupported: store-aware closure rule: verified by the oracle battery itself
  q.index-select             (select …)           unsupported: store-aware closure rule: verified by the oracle battery itself
  q.select-past              (select …)           unsupported: store-aware closure rule: verified by the oracle battery itself
  15 rules audited, 0 unverifiable

Planting the intentionally-unsound fixture rules makes the audit fail with
exit status 2: one fixture dies on the static checker (silent drops), the
acknowledged variant survives it and is refuted by its proof obligation:

  $ tmllint --rules --plant-unsound > audit.out 2>&1; echo $?
  2
  $ tail -1 audit.out
  17 rules audited, 2 unverifiable
  $ grep -c 'STATIC: RHS silently discards' audit.out
  1
  $ grep -c 'REFUTED' audit.out
  1

The audit is also available as JSON:

  $ tmllint --rules --json | tr ',' '\n' | grep -c '"name":"q.merge-select"'
  1
