tmllint reports every documented diagnostic class on bad.tl — unused and
shadowed bindings, dead code after reduction (both the TL constant-condition
form and the TML dead-binding form), discarded non-unit results, and writes
through a selection the optimizer would otherwise treat as constant:

  $ tmllint bad.tl
  bad.tl:11:3: [dead-code] f: 1 dead binding(s) deleted by reduction
  bad.tl:11:3: [unused-binding] binding waste is never used
  bad.tl:12:3: [unused-binding] binding helper is never used
  bad.tl:13:3: [shadowed-binding] binding n shadows an earlier binding of the same name
  bad.tl:14:6: [dead-code] condition is constantly true; the else branch is unreachable after reduction
  bad.tl:19:4: [discarded-result] expression result of type Int is discarded
  bad.tl:20:9: [dead-code] loop condition is constantly false; the body is unreachable
  bad.tl:26:3: [aliased-mutation] h: 1 constant-true selection(s) whose result may be written through; the optimizer keeps the copy
  8 diagnostics

Without --strict the exit status is zero even with diagnostics; with it the
tool exits 2:

  $ tmllint bad.tl > /dev/null; echo $?
  0
  $ tmllint --strict bad.tl > /dev/null; echo $?
  2

Machine-readable output:

  $ tmllint --json bad.tl | tr ',' '\n' | grep -c '"class"'
  8

The diagnostic-rich program is still a correct program — it type-checks and
runs (9 = g() + h() = 7 + 2):

  $ tmlc run bad.tl | sed '$d'
  9

The TML-level diagnostics also work on a persistent store image, where no
source positions exist:

  $ tmlc save bad.tl bad.img > /dev/null
  $ tmllint --image bad.img
  bad.img:0:0: [aliased-mutation] h: 1 constant-true selection(s) whose result may be written through; the optimizer keeps the copy
  bad.img:0:0: [dead-code] f: 1 dead binding(s) deleted by reduction
  2 diagnostics

The shipped example programs and the TL standard library are lint-clean
under --strict (this is the @lint alias's check):

  $ tmllint --strict --stdlib ../../examples/tl/*.tl
  0 diagnostics
