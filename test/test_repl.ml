(* Tests for the incremental session (Repl): persistent store across
   inputs, incremental linking, redefinition with dynamic relinking,
   interaction with the reflective optimizer. *)

open Tml_vm
open Tml_frontend

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

let expect_value session src expected =
  match (Repl.feed session src).Repl.result with
  | Some (Eval.Done v, _) ->
    check tbool
      (Printf.sprintf "%s = %s" src (Value.to_string expected))
      true (Value.identical v expected)
  | Some (o, _) -> Alcotest.failf "%s: %a" src Eval.pp_outcome o
  | None -> Alcotest.failf "%s: no result" src

let test_define_and_call () =
  let s = Repl.create () in
  let r = Repl.feed s "let double(x: Int): Int = x * 2" in
  check Alcotest.(list string) "defined" [ "double" ] r.Repl.defined;
  expect_value s "double(21)" (Value.Int 42);
  (* bare expressions are sugar for do-blocks *)
  expect_value s "1 + 2 * 3" (Value.Int 7)

let test_mutation_persists () =
  let s = Repl.create () in
  ignore (Repl.feed s "let r = relation(tuple(1, 10), tuple(2, 20))");
  expect_value s "count(r)" (Value.Int 2);
  ignore (Repl.feed s "do insert(r, tuple(3, 30)) end");
  expect_value s "count(r)" (Value.Int 3);
  (* an index built in one input is a runtime binding for later ones *)
  ignore (Repl.feed s "do mkindex(r, 1) end");
  expect_value s "count(select x from x in r where x.1 == 3 end)" (Value.Int 1)

let test_incremental_defs_see_older () =
  let s = Repl.create () in
  ignore (Repl.feed s "let base = 100");
  ignore (Repl.feed s "let above(x: Int): Int = x + base");
  expect_value s "above(11)" (Value.Int 111)

let test_redefinition_relinks () =
  let s = Repl.create () in
  ignore (Repl.feed s "let f(x: Int): Int = x + 1");
  ignore (Repl.feed s "let g(x: Int): Int = f(x) * 10");
  expect_value s "g(1)" (Value.Int 20);
  (* redefining f must be visible through the existing g *)
  ignore (Repl.feed s "let f(x: Int): Int = x + 2");
  expect_value s "g(1)" (Value.Int 30)

let test_output_captured () =
  let s = Repl.create () in
  let r = Repl.feed s "do io.print_str(\"hi\") end" in
  check tstring "output" "hi" r.Repl.output;
  let r2 = Repl.feed s "do io.print_str(\"there\") end" in
  check tstring "only the new output" "there" r2.Repl.output

let test_exceptions_surface () =
  let s = Repl.create () in
  match (Repl.feed s "1 / 0").Repl.result with
  | Some (Eval.Raised (Value.Str "division by zero"), _) -> ()
  | Some (o, _) -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o
  | None -> Alcotest.fail "no result"

let test_type_errors_do_not_corrupt () =
  let s = Repl.create () in
  ignore (Repl.feed s "let ok(x: Int): Int = x");
  (match Repl.feed s "do ok(true) end" with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "type error expected");
  (* the session is still usable *)
  expect_value s "ok(5)" (Value.Int 5)

let test_reflective_optimize_in_session () =
  let s = Repl.create () in
  ignore (Repl.feed s "let square(x: Int): Int = x * x");
  let steps_of () =
    match (Repl.feed s "square(9)").Repl.result with
    | Some (Eval.Done (Value.Int 81), steps) -> steps
    | _ -> Alcotest.fail "square(9) failed"
  in
  let before = steps_of () in
  (match Repl.function_oid s "square" with
  | Some oid -> ignore (Tml_reflect.Reflect.optimize_inplace (Repl.ctx s) oid)
  | None -> Alcotest.fail "square not linked");
  let after = steps_of () in
  check tbool "optimization pays off inside the session" true (after < before)

let test_session_image_roundtrip () =
  let s = Repl.create () in
  ignore (Repl.feed s "let triple(x: Int): Int = x * 3");
  expect_value s "triple(5)" (Value.Int 15);
  let oid =
    match Repl.function_oid s "triple" with
    | Some oid -> oid
    | None -> Alcotest.fail "triple not linked"
  in
  let heap' = Image.load (Image.save (Repl.ctx s).Runtime.heap) in
  let ctx' = Runtime.create heap' in
  match Machine.run_proc ctx' (Value.Oidv oid) [ Value.Int 7 ] with
  | Eval.Done (Value.Int 21) -> ()
  | o -> Alcotest.failf "loaded session function: %a" Eval.pp_outcome o

let test_speccache_persists_with_session () =
  Speccache.clear ();
  let path = Filename.temp_file "tmlrepl" ".store" in
  let s = Repl.create () in
  ignore (Repl.feed s "let quad(x: Int): Int = x * 4");
  let oid =
    match Repl.function_oid s "quad" with
    | Some o -> o
    | None -> Alcotest.fail "quad not linked"
  in
  ignore (Tml_reflect.Reflect.optimize (Repl.ctx s) oid);
  let n = Speccache.length () in
  check tbool "specialization cached" true (n >= 1);
  let pstore = Pstore.attach ~fsync:false path (Repl.ctx s).Runtime.heap in
  ignore (Repl.persist s pstore);
  Pstore.close pstore;
  (* a different process: nothing in memory but the image *)
  Speccache.clear ();
  let pstore2 = Pstore.open_ ~fsync:false path in
  let s2 = Repl.restore pstore2 in
  check tint "cache restored from the image" n (Speccache.length ());
  (* the reopened image serves the specialization without re-optimizing *)
  let hits0 = (Speccache.stats ()).Speccache.hits in
  (match Repl.function_oid s2 "quad" with
  | Some oid2 -> ignore (Tml_reflect.Reflect.optimize (Repl.ctx s2) oid2)
  | None -> Alcotest.fail "quad lost across the image");
  check tbool "cold reopen skips re-optimization" true
    ((Speccache.stats ()).Speccache.hits > hits0);
  Pstore.close pstore2;
  Speccache.clear ();
  Sys.remove path

let test_counts () =
  let s = Repl.create () in
  let n0 = List.length (Repl.function_oids s) in
  check tbool "stdlib linked" true (n0 > 30);
  ignore (Repl.feed s "let a(x: Int): Int = x");
  check tint "one more function" (n0 + 1) (List.length (Repl.function_oids s))

let () =
  Runtime.install ();
  Alcotest.run "tml_repl"
    [
      ( "session",
        [
          Alcotest.test_case "define and call" `Quick test_define_and_call;
          Alcotest.test_case "mutations persist" `Quick test_mutation_persists;
          Alcotest.test_case "later definitions see earlier ones" `Quick
            test_incremental_defs_see_older;
          Alcotest.test_case "redefinition relinks callers" `Quick test_redefinition_relinks;
          Alcotest.test_case "output captured per input" `Quick test_output_captured;
          Alcotest.test_case "exceptions surface" `Quick test_exceptions_surface;
          Alcotest.test_case "errors do not corrupt the session" `Quick
            test_type_errors_do_not_corrupt;
          Alcotest.test_case "reflective optimization in session" `Quick
            test_reflective_optimize_in_session;
          Alcotest.test_case "session store images" `Quick test_session_image_roundtrip;
          Alcotest.test_case "speccache persists with the session" `Quick
            test_speccache_persists_with_session;
          Alcotest.test_case "function accounting" `Quick test_counts;
        ] );
    ]
