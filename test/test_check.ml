(* Tests for the translation-validation / differential-fuzzing subsystem
   (lib/check): bounded qcheck differential suites with fixed seeds, the
   object-codec round-trip oracle over hand-built store objects, and the
   deterministic replay of every minimized reproducer in test/corpus/.

   The long campaigns live behind `dune build @fuzz`; these suites are the
   always-on slice of the same oracles. *)

open Tml_core
open Tml_vm
open Tml_check

let () = Tml_query.Qprims.install ()

(* every optimizing engine runs with the pass-level validation hook on *)
let engines = Oracle.engines ~validate:true

(* ------------------------------------------------------------------ *)
(* qcheck differential suites                                          *)
(* ------------------------------------------------------------------ *)

(* Cases derive from an integer seed through Tgen's own deterministic
   generator, so a qcheck counterexample is reproducible from one number
   (`tmlfuzz run --seed N --count 1`). *)

let diff_case_gen = QCheck2.Gen.(map Tgen.case_of_seed (int_bound 100_000))

let print_diff_case (c : Tgen.case) =
  Printf.sprintf "seed=%d a=%d b=%d\n%s" c.Tgen.seed c.Tgen.a c.Tgen.b
    (Sexp.print_value c.Tgen.proc)

let query_case_gen = QCheck2.Gen.(map Tgen.query_case_of_seed (int_bound 100_000))

let print_query_case (c : Tgen.query_case) =
  Printf.sprintf "seed=%d rows=%d\n%s" c.Tgen.qseed
    (List.length c.Tgen.rows)
    (Sexp.print_value c.Tgen.qproc)

let verdict_ok = function
  | Oracle.Agree _ -> true
  | Oracle.Disagree _ as v ->
    QCheck2.Test.fail_reportf "%a" Oracle.pp_verdict v

let prop_engines_agree =
  QCheck2.Test.make ~name:"all engines agree on generated programs" ~count:120
    ~print:print_diff_case diff_case_gen (fun c ->
      verdict_ok (Oracle.check_case ~engines c))

let prop_query_engines_agree =
  QCheck2.Test.make ~name:"all engines agree on generated query pipelines" ~count:80
    ~print:print_query_case query_case_gen (fun c ->
      verdict_ok (Oracle.check_query ~engines c))

let prop_ptml_roundtrip =
  QCheck2.Test.make ~name:"PTML round trip is exact on generated programs" ~count:150
    ~print:print_diff_case diff_case_gen (fun c ->
      match Roundtrip.ptml_value c.Tgen.proc with
      | Roundtrip.Pass -> true
      | o -> QCheck2.Test.fail_reportf "%a" Roundtrip.pp_outcome o)

let prop_store_reopen =
  (* each case commits/reopens a temporary store file: keep the count low *)
  QCheck2.Test.make ~name:"durable store survives reopen on generated heaps" ~count:25
    ~print:string_of_int
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      match Harness.run_seed ~validate:true Harness.Store seed with
      | `Agree | `Skip _ -> true
      | `Fail f -> QCheck2.Test.fail_reportf "%s" f.Harness.f_detail)

let prop_purity_sound =
  QCheck2.Test.make ~name:"inferred effect claims hold on generated query pipelines"
    ~count:60 ~print:print_query_case query_case_gen (fun c ->
      match Oracle.check_purity c with
      | Oracle.Purity_agree | Oracle.Purity_untestable _ -> true
      | Oracle.Purity_violation d -> QCheck2.Test.fail_reportf "%s" d)

(* the cached-vs-fresh reflective pair in isolation: only the reflective
   engines (one specializing fresh, one served from the specialization
   cache) against the tree baseline, so a divergence is attributable to
   the cache — a stale entry, a mis-keyed fingerprint, or a PTML round
   trip of the cached body.  The full battery above also runs the cached
   engine; this suite keeps the failure signal narrow. *)
let cached_pair_engines =
  List.filter
    (function
      | Oracle.Tree | Oracle.Reflect _ | Oracle.Reflect_cached _ -> true
      | Oracle.Mach | Oracle.Opt _ | Oracle.Tiered _ -> false)
    engines

let prop_cached_matches_fresh =
  QCheck2.Test.make ~name:"cached specializations match fresh ones on programs" ~count:80
    ~print:print_diff_case diff_case_gen (fun c ->
      verdict_ok (Oracle.check_case ~engines:cached_pair_engines c))

let prop_cached_matches_fresh_query =
  QCheck2.Test.make ~name:"cached specializations match fresh ones on query pipelines"
    ~count:60 ~print:print_query_case query_case_gen (fun c ->
      verdict_ok (Oracle.check_query ~engines:cached_pair_engines c))

(* the tiered-vs-machine pair in isolation: tree baseline, machine, and
   the two tiered engines (raw and reflect-optimized code, both
   force-promoted to the compiled closure tier), so a divergence is
   attributable to the closure compiler or the promotion path.  The full
   battery above also runs the tiered engines; this suite keeps the
   failure signal narrow. *)
let tiered_pair_engines =
  List.filter
    (function
      | Oracle.Tree | Oracle.Mach | Oracle.Tiered _ -> true
      | Oracle.Opt _ | Oracle.Reflect _ | Oracle.Reflect_cached _ -> false)
    engines

let prop_tiered_matches_machine =
  QCheck2.Test.make ~name:"tiered execution matches the machine on programs" ~count:100
    ~print:print_diff_case diff_case_gen (fun c ->
      verdict_ok (Oracle.check_case ~engines:tiered_pair_engines c))

let prop_tiered_matches_machine_query =
  QCheck2.Test.make ~name:"tiered execution matches the machine on query pipelines"
    ~count:60 ~print:print_query_case query_case_gen (fun c ->
      verdict_ok (Oracle.check_query ~engines:tiered_pair_engines c))

(* Policy promotion (not force_promote): with the threshold forced down
   to one call and the work gate off, the machine's tier hook promotes
   mid-workload.  Run every generated program twice with and without the
   tier and require identical outcomes, output AND step counts — the
   compiled tier charges exactly like the machine, a stronger claim than
   the oracle battery makes (it ignores steps). *)
let run_case_with_policy ~tier (c : Tgen.case) =
  Tml_analysis.Cache.clear ();
  Speccache.clear ();
  Tierup.clear ();
  let heap = Value.Heap.create () in
  let ctx = Runtime.create ~fuel:3_000_000 heap in
  let oid = Value.Heap.alloc_func heap ~name:"fuzz" c.Tgen.proc in
  let saved = !Tierup.enabled, !Tierup.call_threshold, !Tierup.min_run_steps in
  if tier then begin
    Tierup.enabled := true;
    Tierup.call_threshold := 1;
    Tierup.min_run_steps := 0
  end
  else Tierup.enabled := false;
  Fun.protect
    ~finally:(fun () ->
      let e, t, m = saved in
      Tierup.enabled := e;
      Tierup.call_threshold := t;
      Tierup.min_run_steps := m;
      Tierup.clear ())
    (fun () ->
      let args = [ Value.Int c.Tgen.a; Value.Int c.Tgen.b ] in
      let o1 = Machine.run_proc ctx (Value.Oidv oid) args in
      let o2 = Machine.run_proc ctx (Value.Oidv oid) args in
      o1, o2, Buffer.contents ctx.Runtime.out, ctx.Runtime.steps)

let prop_policy_promotion_agrees =
  QCheck2.Test.make ~name:"policy promotion at threshold 1 matches the machine exactly"
    ~count:60 ~print:print_diff_case diff_case_gen (fun c ->
      let m1, m2, mout, msteps = run_case_with_policy ~tier:false c in
      let t1, t2, tout, tsteps = run_case_with_policy ~tier:true c in
      if
        Eval.outcome_equal m1 t1 && Eval.outcome_equal m2 t2
        && String.equal mout tout && msteps = tsteps
      then true
      else
        QCheck2.Test.fail_reportf
          "machine: %a / %a, %S, %d steps@.tiered: %a / %a, %S, %d steps" Eval.pp_outcome
          m1 Eval.pp_outcome m2 mout msteps Eval.pp_outcome t1 Eval.pp_outcome t2 tout
          tsteps)

(* ------------------------------------------------------------------ *)
(* Validation hook                                                     *)
(* ------------------------------------------------------------------ *)

(* the hook is also exercised by every Opt/Reflect engine above; this checks
   it directly against each optimizer level over a seed sweep *)
let test_validation_hook () =
  for seed = 0 to 30 do
    let c = Tgen.case_of_seed seed in
    List.iter
      (fun config ->
        let config = { config with Optimizer.validate = true } in
        match Optimizer.optimize_value ~config c.Tgen.proc with
        | exception Optimizer.Validation_error msg ->
          Alcotest.failf "seed %d: validation failed: %s" seed msg
        | _ -> ())
      [ Optimizer.o1; Optimizer.o2; Optimizer.o3 ]
  done

(* ------------------------------------------------------------------ *)
(* Object-codec round trips over hand-built store objects              *)
(* ------------------------------------------------------------------ *)

let rt_outcome = Alcotest.testable Roundtrip.pp_outcome ( = )
let check_rt name expected got = Alcotest.check rt_outcome name expected got

let test_obj_simple () =
  check_rt "bytes" Roundtrip.Pass
    (Roundtrip.obj (Value.Bytes (Bytes.of_string "hello\x00\xffworld")));
  check_rt "array" Roundtrip.Pass
    (Roundtrip.obj (Value.Array [| Value.Int 1; Value.Real 2.5; Value.Str "x" |]));
  check_rt "vector" Roundtrip.Pass
    (Roundtrip.obj
       (Value.Vector [| Value.Bool true; Value.Char 'q'; Value.Unit; Value.Oidv (Oid.of_int 7) |]));
  check_rt "tuple" Roundtrip.Pass
    (Roundtrip.obj (Value.Tuple [| Value.Int 42; Value.Str "row" |]));
  check_rt "module" Roundtrip.Pass
    (Roundtrip.obj
       (Value.Module
          { Value.mod_name = "m"; exports = [| "one", Value.Int 1; "two", Value.Int 2 |] }))

let test_obj_relation () =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let oid =
    Tml_query.Rel.create ctx ~name:"t"
      [ [| Value.Int 1; Value.Int 2 |]; [| Value.Int 3; Value.Int 4 |] ]
  in
  Tml_query.Rel.add_index ctx oid 0;
  (* the relation header round-trips with its page/index/stats references
     in the payload; index and stats siblings and the row tuples
     round-trip as plain objects *)
  check_rt "relation" Roundtrip.Pass (Roundtrip.obj (Value.Heap.get heap oid));
  (match Tml_query.Rel.find_index ctx oid 0 with
  | Some _ -> ()
  | None -> Alcotest.fail "index missing");
  List.iter
    (fun (_, ixoid) ->
      check_rt "index object" Roundtrip.Pass (Roundtrip.obj (Value.Heap.get heap ixoid)))
    (Tml_query.Rel.get ctx oid).Value.rel_indexes;
  (match (Tml_query.Rel.get ctx oid).Value.rel_stats with
  | Some soid ->
    check_rt "stats object" Roundtrip.Pass (Roundtrip.obj (Value.Heap.get heap soid))
  | None -> Alcotest.fail "stats missing");
  Array.iter
    (fun row ->
      match row with
      | Value.Oidv t ->
        check_rt "row tuple" Roundtrip.Pass (Roundtrip.obj (Value.Heap.get heap t))
      | _ -> Alcotest.fail "relation row is not an Oidv")
    (Tml_query.Rel.rows ctx oid)

let test_obj_func () =
  let heap = Value.Heap.create () in
  let proc =
    Sexp.parse_value "proc(a b ce! cc!) (+ a b ce! cont(t) (cc! t))"
  in
  let oid = Value.Heap.alloc_func heap ~name:"f" proc in
  check_rt "func" Roundtrip.Pass (Roundtrip.obj (Value.Heap.get heap oid));
  (* a live tree closure in the R-value bindings is the one specified
     rejection: the codec must refuse it, the oracle records a skip *)
  (match Value.Heap.get heap oid with
  | Value.Func fo ->
    let clo =
      match proc with
      | Term.Abs f -> Value.Closure { Value.t_abs = f; t_env = Ident.Map.empty }
      | _ -> assert false
    in
    fo.Value.fo_bindings <- [ (Ident.fresh "g", clo) ];
    (match Roundtrip.obj (Value.Heap.get heap oid) with
    | Roundtrip.Skip _ -> ()
    | o -> Alcotest.failf "live closure not rejected: %a" Roundtrip.pp_outcome o)
  | _ -> Alcotest.fail "alloc_func did not produce a Func")

(* ------------------------------------------------------------------ *)
(* Corpus replay: every minimized reproducer, as a named test          *)
(* ------------------------------------------------------------------ *)

let corpus_dir = "corpus"

let corpus_files () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".corpus")
    |> List.sort compare
  else []

let corpus_tests =
  let replay_one file () =
    let oracle, case = Harness.load_entry (Filename.concat corpus_dir file) in
    match Harness.replay ~validate:true oracle case with
    | Ok () -> ()
    | Error detail -> Alcotest.failf "%s regressed:\n%s" file detail
  in
  let present () =
    if corpus_files () = [] then
      Alcotest.fail "test/corpus is empty or not wired as a test dependency"
  in
  Alcotest.test_case "corpus present" `Quick present
  :: List.map (fun f -> Alcotest.test_case f `Quick (replay_one f)) (corpus_files ())

(* the purity entry must stay *testable*: replay maps "no testable claims"
   to ok, so this checks the analysis still claims read-only/fault-free on
   the checked-in pipeline and that execution still agrees *)
let test_purity_corpus_testable () =
  match Harness.load_entry (Filename.concat corpus_dir "purity-readonly-select.corpus") with
  | Harness.Purity, Harness.Cquery q -> (
    match Oracle.check_purity q with
    | Oracle.Purity_agree -> ()
    | Oracle.Purity_untestable m -> Alcotest.failf "claims became untestable: %s" m
    | Oracle.Purity_violation d -> Alcotest.failf "analysis unsoundness: %s" d)
  | _ -> Alcotest.fail "expected a purity query entry"

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest =
    (* fixed PRNG: the suite is deterministic run to run *)
    QCheck_alcotest.to_alcotest ~speed_level:`Quick
      ~rand:(Random.State.make [| 0x7e57; 0xc8ec |])
  in
  Alcotest.run "tml_check"
    [
      ( "differential",
        List.map to_alcotest
          [
            prop_engines_agree;
            prop_query_engines_agree;
            prop_cached_matches_fresh;
            prop_cached_matches_fresh_query;
            prop_tiered_matches_machine;
            prop_tiered_matches_machine_query;
            prop_policy_promotion_agrees;
            prop_ptml_roundtrip;
            prop_store_reopen;
            prop_purity_sound;
          ] );
      ( "validation",
        [ Alcotest.test_case "optimizer passes validate on a seed sweep" `Quick
            test_validation_hook ] );
      ( "obj round trip",
        [
          Alcotest.test_case "simple objects" `Quick test_obj_simple;
          Alcotest.test_case "relation and rows" `Quick test_obj_relation;
          Alcotest.test_case "functions and live closures" `Quick test_obj_func;
        ] );
      ( "corpus",
        corpus_tests
        @ [
            Alcotest.test_case "purity entry makes live claims" `Quick
              test_purity_corpus_testable;
          ] );
    ]
