(* Unit tests for the TML core: identifiers, literals, terms, occurrence
   counting, substitution, α-conversion, printing/parsing, well-formedness. *)

open Tml_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Ident                                                                *)
(* ------------------------------------------------------------------ *)

let test_ident_fresh () =
  let a = Ident.fresh "x" in
  let b = Ident.fresh "x" in
  check tbool "same name, different stamps" false (Ident.equal a b);
  check tbool "self equality" true (Ident.equal a a);
  check tbool "value sort by default" false (Ident.is_cont a);
  let c = Ident.fresh ~sort:Ident.Cont "k" in
  check tbool "cont sort" true (Ident.is_cont c)

let test_ident_refresh () =
  let a = Ident.fresh ~sort:Ident.Cont "k" in
  let b = Ident.refresh a in
  check tbool "refresh differs" false (Ident.equal a b);
  check tbool "refresh keeps sort" true (Ident.is_cont b);
  check tstring "refresh keeps name" a.Ident.name b.Ident.name

let test_ident_make_bumps_counter () =
  let big = Ident.make ~name:"imported" ~stamp:1_000_000 ~sort:Ident.Value in
  let next = Ident.fresh "after" in
  check tbool "fresh after make does not collide" true (next.Ident.stamp > big.Ident.stamp)

let test_ident_collections () =
  let a = Ident.fresh "a" and b = Ident.fresh "b" in
  let set = Ident.Set.of_list [ a; b; a ] in
  check tint "set deduplicates" 2 (Ident.Set.cardinal set);
  let map = Ident.Map.(empty |> add a 1 |> add b 2 |> add a 3) in
  check tint "map replaces" 3 (Ident.Map.find a map);
  check tint "map cardinal" 2 (Ident.Map.cardinal map)

(* ------------------------------------------------------------------ *)
(* Literal                                                              *)
(* ------------------------------------------------------------------ *)

let test_literal_equal () =
  check tbool "int" true (Literal.equal (Literal.Int 3) (Literal.Int 3));
  check tbool "int/char differ" false (Literal.equal (Literal.Int 97) (Literal.Char 'a'));
  check tbool "nan reflexive" true (Literal.equal (Literal.Real Float.nan) (Literal.Real Float.nan));
  check tbool "negative zero distinguished" false
    (Literal.equal (Literal.Real 0.0) (Literal.Real (-0.0)));
  check tbool "oid" true
    (Literal.equal (Literal.Oid (Oid.of_int 5)) (Literal.Oid (Oid.of_int 5)))

let test_literal_compare_total () =
  let samples =
    [
      Literal.Unit; Literal.Bool false; Literal.Bool true; Literal.Int (-1); Literal.Int 7;
      Literal.Char 'z'; Literal.Real 1.5; Literal.Str "s"; Literal.Oid (Oid.of_int 2);
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Literal.compare a b and ba = Literal.compare b a in
          check tbool "antisymmetric" true ((ab >= 0 && ba <= 0) || (ab <= 0 && ba >= 0));
          if Literal.equal a b then check tint "equal means zero" 0 ab)
        samples)
    samples

(* ------------------------------------------------------------------ *)
(* Term                                                                 *)
(* ------------------------------------------------------------------ *)

let sample_term () =
  (* proc(x ce cc) (+ x 1 ce cont(t) (cc t)) *)
  Sexp.parse_value "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))"

let test_term_size () =
  let v = sample_term () in
  (* proc node: 1 + 3 params + body(10);
     body: 1 + prim(1) + x(1) + 1(1) + ce(1) + cont-abs(5) *)
  check tint "size" 14 (Term.size_value v);
  check tint "lit size" 1 (Term.size_value (Term.int 3))

let test_term_free_vars () =
  let v = sample_term () in
  check tint "closed" 0 (Ident.Set.cardinal (Term.free_vars_value v));
  let a = Sexp.parse_app "(f x ce! cc!)" in
  check tint "four free" 4 (Ident.Set.cardinal (Term.free_vars_app a))

let test_term_kind () =
  match sample_term () with
  | Term.Abs a ->
    check tbool "proc kind" true (Term.abs_kind a = `Proc);
    (match a.Term.body.Term.args with
    | [ _; _; _; Term.Abs k ] -> check tbool "cont kind" true (Term.abs_kind k = `Cont)
    | _ -> Alcotest.fail "unexpected shape")
  | _ -> Alcotest.fail "expected an abstraction"

let test_alpha_equal () =
  let v1 = Sexp.parse_value "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))" in
  let v2 = Sexp.parse_value "proc(y e! k!) (+ y 1 e! cont(u) (k! u))" in
  check tbool "alpha equal" true (Term.alpha_equal_value v1 v2);
  check tbool "structurally different" false (Term.equal_value v1 v2);
  let v3 = Sexp.parse_value "proc(y e! k!) (+ y 2 e! cont(u) (k! u))" in
  check tbool "different constant" false (Term.alpha_equal_value v1 v3)

let test_prims_used () =
  let a = Sexp.parse_app "(+ 1 2 ce! cont(t) (* t t ce2! cont(u) (k! u)))" in
  check Alcotest.(list string) "prims" [ "*"; "+" ] (Term.prims_used a)

(* ------------------------------------------------------------------ *)
(* Occurs — the |E|_v function                                          *)
(* ------------------------------------------------------------------ *)

let test_occurs_basic () =
  let x = Ident.fresh "x" in
  let y = Ident.fresh "y" in
  check tint "|v|_v = 1" 1 (Occurs.count_value x (Term.var x));
  check tint "|v'|_v = 0" 0 (Occurs.count_value x (Term.var y));
  check tint "|lit|_v = 0" 0 (Occurs.count_value x (Term.int 3));
  check tint "|prim|_v = 0" 0 (Occurs.count_value x (Term.prim "+"));
  let app = Term.app (Term.var x) [ Term.var x; Term.var y; Term.var x ] in
  check tint "application sums" 3 (Occurs.count_app x app);
  let abs = Term.abs [ y ] app in
  check tint "abstraction counts body" 3 (Occurs.count_value x abs)

let test_occurs_all () =
  let a = Sexp.parse_app "(f x x y ce! cont(t) (g t t t ce! cc!))" in
  let counts = Occurs.count_all_app a in
  let by_name name =
    Ident.Tbl.fold
      (fun id n acc -> if id.Ident.name = name then n + acc else acc)
      counts 0
  in
  check tint "x twice" 2 (by_name "x");
  check tint "y once" 1 (by_name "y");
  check tint "t three times" 3 (by_name "t");
  check tint "ce twice" 2 (by_name "ce")

(* ------------------------------------------------------------------ *)
(* Subst                                                                *)
(* ------------------------------------------------------------------ *)

let test_subst_simple () =
  let a = Sexp.parse_app "(f x x ce! cc!)" in
  let x =
    Ident.Set.elements (Term.free_vars_app a)
    |> List.find (fun id -> id.Ident.name = "x")
  in
  let a' = Subst.app x ~by:(Term.int 42) a in
  check tint "both occurrences replaced" 0 (Occurs.count_app x a');
  check tbool "42 present" true
    (Term.exists_app
       (fun node -> List.exists (Term.equal_value (Term.int 42)) node.Term.args)
       a')

let test_subst_under_binder () =
  let a = Sexp.parse_app "(f cont(t) (g x t ce! cc!) x)" in
  let x =
    Ident.Set.elements (Term.free_vars_app a)
    |> List.find (fun id -> id.Ident.name = "x")
  in
  let a' = Subst.app x ~by:(Term.int 7) a in
  check tint "inner occurrence replaced too" 0 (Occurs.count_app x a')

let test_subst_many () =
  let a = Sexp.parse_app "(f x y ce! cc!)" in
  let frees = Ident.Set.elements (Term.free_vars_app a) in
  let x = List.find (fun id -> id.Ident.name = "x") frees in
  let y = List.find (fun id -> id.Ident.name = "y") frees in
  let env = Ident.Map.(empty |> add x (Term.int 1) |> add y (Term.int 2)) in
  let a' = Subst.app_many env a in
  check tint "x gone" 0 (Occurs.count_app x a');
  check tint "y gone" 0 (Occurs.count_app y a')

(* ------------------------------------------------------------------ *)
(* Alpha                                                                *)
(* ------------------------------------------------------------------ *)

let test_alpha_freshen () =
  let v = sample_term () in
  let v' = Alpha.freshen_value v in
  check tbool "alpha-equivalent" true (Term.alpha_equal_value v v');
  check tbool "not structurally equal" false (Term.equal_value v v');
  (* binder stamps must be disjoint *)
  let binders value =
    let acc = ref Ident.Set.empty in
    let rec go = function
      | Term.Abs a ->
        List.iter (fun p -> acc := Ident.Set.add p !acc) a.Term.params;
        go_app a.Term.body
      | _ -> ()
    and go_app { Term.func; args } =
      go func;
      List.iter go args
    in
    go value;
    !acc
  in
  check tbool "disjoint binders" true
    (Ident.Set.is_empty (Ident.Set.inter (binders v) (binders v')))

let test_alpha_keeps_free () =
  let a = Sexp.parse_app "(f x ce! cc!)" in
  let v = Term.Abs { Term.params = []; body = a } in
  let v' = Alpha.freshen_value v in
  check tbool "free variables preserved" true
    (Ident.Set.equal (Term.free_vars_value v) (Term.free_vars_value v'))

(* ------------------------------------------------------------------ *)
(* Sexp / Pp round trips                                                *)
(* ------------------------------------------------------------------ *)

let test_sexp_roundtrip () =
  (* closed terms: α-equivalence requires free identifiers to be identical,
     and re-parsing mints fresh stamps for free tokens *)
  let samples =
    [
      "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))";
      "proc(a b ce! k!) (== a 1 2 cont() (k! b) cont() (k! a) cont() (k! 0))";
      "proc(ce! cc!) (Y lambda(c0! loop! c!) (c! cont() (loop! 3) cont(i) (cc! i)))";
      "proc(ce! cc!) (ccall \"print_str\" \"hi\\n\" ce! cc!)";
      "proc(f x ce! cc!) (f 'a' 1.5 <oid 12> nil true false x ce! cc!)";
      "proc(a b ce! cc!) (<= a b cont() (cc! a) cont() (cc! b))";
    ]
  in
  List.iter
    (fun s ->
      let v = Sexp.parse_value s in
      let v' = Sexp.parse_value (Sexp.print_value v) in
      check tbool ("roundtrip: " ^ s) true (Term.alpha_equal_value v v'))
    samples

let test_sexp_parse_errors () =
  let bad = [ "("; "(f"; ")"; "proc(x"; "(f 'unterminated)"; "" ] in
  List.iter
    (fun s ->
      match Sexp.parse_app s with
      | exception Sexp.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    bad

let test_pp_paper_style () =
  let v = Sexp.parse_value "cont(t) (cc! t)" in
  let printed = Pp.value_to_string v in
  check tbool "prints cont keyword" true
    (String.length printed >= 4 && String.sub printed 0 4 = "cont")

(* ------------------------------------------------------------------ *)
(* Wf                                                                   *)
(* ------------------------------------------------------------------ *)

let wf_ok s =
  match Wf.check_value (Sexp.parse_value s) with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "expected well-formed %S: %s" s
      (String.concat "; " (List.map (fun e -> e.Wf.message) es))

let wf_bad s =
  match Wf.check_value (Sexp.parse_value s) with
  | Ok () -> Alcotest.failf "expected ill-formed: %S" s
  | Error _ -> ()

let test_wf_positive () =
  wf_ok "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))";
  wf_ok "proc(x ce! cc!) (== x 1 2 cont() (cc! 10) cont() (cc! 20) cont() (cc! 30))";
  wf_ok
    "proc(n ce! cc!) (Y lambda(c0! loop! c!) (c! cont() (loop! n 0) cont(i acc) (<= i 0 cont() \
     (cc! acc) cont() (+ acc i ce! cont(a2) (- i 1 ce! cont(i2) (loop! i2 a2))))))";
  wf_ok "proc(ce! cc!) (pushHandler cont(x) (cc! x) cont() (raise \"boom\"))";
  (* β-redex kept in the tree *)
  wf_ok "proc(ce! cc!) (cont(x y) (cc! x) 1 2)"

let test_wf_double_binding () =
  (* the same identifier bound twice violates the unique binding rule; the
     Sexp reader creates fresh stamps per binder, so we build it by hand *)
  let x = Ident.fresh "x" in
  let cc = Ident.fresh ~sort:Ident.Cont "cc" in
  let ce = Ident.fresh ~sort:Ident.Cont "ce" in
  let inner = Term.abs [ x ] (Term.app (Term.var cc) [ Term.var x ]) in
  let v = Term.abs [ x; ce; cc ] (Term.app inner [ Term.var x ]) in
  match Wf.check_value v with
  | Ok () -> Alcotest.fail "double binding accepted"
  | Error es ->
    check tbool "mentions unique binding" true
      (List.exists (fun e -> contains e.Wf.message "unique binding") es)

let test_wf_cont_escape () =
  (* a continuation passed in a value position *)
  wf_bad "proc(x ce! cc!) (f cont(t) (cc! t) ce! cc!)";
  (* a continuation variable as a value argument *)
  wf_bad "proc(x ce! cc!) (f cc! ce! cc!)"

let test_wf_bad_shapes () =
  (* abstraction used as a value with wrong continuation parameters *)
  wf_bad "proc(x ce! cc!) (g proc(y k!) (k! y) ce! cc!)";
  (* unknown primitive, built directly (the reader would read it as a
     variable) *)
  (let x = Ident.fresh "x" in
   let ce = Ident.fresh ~sort:Ident.Cont "ce" in
   let cc = Ident.fresh ~sort:Ident.Cont "cc" in
   let v =
     Term.abs [ x; ce; cc ]
       (Term.app (Term.prim "frobnicate") [ Term.var x; Term.var ce; Term.var cc ])
   in
   match Wf.check_value v with
   | Ok () -> Alcotest.fail "unknown primitive accepted"
   | Error _ -> ());
  (* literal in functional position *)
  wf_bad "proc(x ce! cc!) (42 x ce! cc!)";
  (* β-redex arity mismatch *)
  wf_bad "proc(ce! cc!) (cont(x y) (cc! x) 1)";
  (* == with tags/continuations mismatch *)
  wf_bad "proc(x ce! cc!) (== x 1 2 cont() (cc! 1))";
  (* Y with a non-canonical binder *)
  wf_bad "proc(ce! cc!) (Y proc(a b ce2! cc2!) (cc2! a))"

let test_wf_scoping () =
  let v = Sexp.parse_value "proc(x ce! cc!) (+ x unbound_thing ce! cc!)" in
  (match Wf.check_value ~free_allowed:(fun _ -> false) v with
  | Ok () -> Alcotest.fail "unbound identifier accepted"
  | Error _ -> ());
  match Wf.check_value v with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "free identifiers should be allowed by default"

(* ------------------------------------------------------------------ *)
(* Prim registry and cost model                                         *)
(* ------------------------------------------------------------------ *)

let test_prim_registry () =
  Primitives.install ();
  check tbool "plus registered" true (Prim.mem "+");
  check tbool "unknown absent" false (Prim.mem "no-such-prim");
  let d = Prim.find_exn "+" in
  check tbool "commutative" true d.Prim.attrs.commutative;
  check tbool "pure" true (d.Prim.attrs.effects = Prim.Pure);
  check tbool "foldable" true d.Prim.attrs.can_fold;
  (* duplicate registration is refused without override *)
  (match Prim.register (Prim.make ~name:"+" ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate registration accepted");
  (* fresh registration works and shows up in [all] *)
  Prim.register (Prim.make ~name:"test-only-prim" ~base_cost:7 ());
  check tbool "listed" true
    (List.exists (fun d -> d.Prim.name = "test-only-prim") (Prim.all ()));
  check tint "cost served" 7
    (Prim.cost_of_app (Term.app (Term.prim "test-only-prim") []))

let test_cost_model () =
  let a = Sexp.parse_app "(+ x 1 ce! cont(t) (cc! t))" in
  (* '+' costs 1, the continuation call costs call_overhead + 1 arg *)
  check tint "app cost" (1 + Cost.call_overhead + 1) (Cost.app_cost a);
  check tint "values are free" 0 (Cost.value_cost (Term.int 3));
  (* literal arguments earn an inlining bonus *)
  let body = Sexp.parse_app "(cc! 1)" in
  let s_no = Cost.inline_savings ~body ~args:[ Term.var (Ident.fresh "x") ] in
  let s_lit = Cost.inline_savings ~body ~args:[ Term.int 1 ] in
  check tbool "literal bonus" true (s_lit > s_no)

let test_effect_classes () =
  let by_class cls =
    List.filter (fun d -> d.Prim.attrs.effects = cls) (Prim.all ()) |> List.length
  in
  check tbool "some pure prims" true (by_class Prim.Pure > 10);
  check tbool "some observers" true (by_class Prim.Observer > 3);
  check tbool "some mutators" true (by_class Prim.Mutator > 3);
  check tbool "control prims" true (by_class Prim.Control >= 3)

let test_sexp_comments_and_oids () =
  let v = Sexp.parse_value "proc(x ce! cc!) ; paper-style comment\n (cc! <oid 9>)" in
  (match v with
  | Term.Abs { body = { args = [ Term.Lit (Literal.Oid o) ]; _ }; _ } ->
    check tint "oid payload" 9 (Oid.to_int o)
  | _ -> Alcotest.fail "unexpected shape");
  (* pretty printers stay total on all node kinds *)
  let printed = Pp.value_to_string v in
  check tbool "flat printer agrees on atoms" true (String.length printed > 0);
  check tbool "flat form single line" true
    (not (String.contains (Format.asprintf "%a" Pp.pp_value_flat v) '\n'))

(* ------------------------------------------------------------------ *)
(* Hashcons: handle equality must coincide with structural equality,   *)
(* and every memoized measure must agree with its walking counterpart. *)
(* ------------------------------------------------------------------ *)

(* a structurally equal but physically distinct copy: same identifiers and
   literals, fresh interior nodes (a print/parse round trip would not do —
   [Sexp.parse_value] mints fresh stamps) *)
let rec copy_value v =
  match v with
  | Term.Abs a -> Term.abs a.Term.params (copy_app a.Term.body)
  | Term.Lit _ | Term.Var _ | Term.Prim _ -> v

and copy_app a = Term.app (copy_value a.Term.func) (List.map copy_value a.Term.args)

let test_hashcons_equal_iff () =
  for seed = 0 to 40 do
    let v = Gen.proc2 (Random.State.make [| seed |]) ~size:(15 + seed) in
    let w = Gen.proc2 (Random.State.make [| seed + 1000 |]) ~size:20 in
    let c = copy_value v in
    check tbool "copy is structurally equal" true (Term.equal_value v c);
    check tbool "hashcons equal on the copy" true (Hashcons.equal_value v c);
    check tint "equal copies share a handle" (Hashcons.id_value v) (Hashcons.id_value c);
    check tbool "hashcons agrees with Term.equal" (Term.equal_value v w)
      (Hashcons.equal_value v w);
    check tbool "same handle iff structurally equal" (Term.equal_value v w)
      (Hashcons.id_value v = Hashcons.id_value w)
  done

let test_hashcons_measures_agree () =
  for seed = 0 to 40 do
    let v = Gen.proc2 (Random.State.make [| seed; 7 |]) ~size:(10 + (3 * seed)) in
    check tint "size" (Term.size_value v) (Hashcons.size_value v);
    check tint "cost" (Cost.value_cost v) (Hashcons.cost_value v);
    check tbool "free vars" true
      (Ident.Set.equal (Term.free_vars_value v) (Hashcons.free_vars_value v));
    match v with
    | Term.Abs a ->
      List.iter
        (fun id ->
          check tbool "occurs"
            (Occurs.occurs_app id a.Term.body)
            (Hashcons.occurs_app id a.Term.body);
          check tint "count" (Occurs.count_app id a.Term.body)
            (Hashcons.count_app id a.Term.body))
        a.Term.params
    | _ -> Alcotest.fail "generator did not produce an abstraction"
  done

let test_hashcons_hash_stable () =
  let v = Gen.proc2 (Random.State.make [| 11 |]) ~size:60 in
  let h = Hashcons.hash_value v in
  check tint "hash equal on a distinct copy" h (Hashcons.hash_value (copy_value v));
  (* the hash is a pure function of the structure: dropping every intern
     table (handles are not reused) must not change it, and equality keeps
     working across the reset *)
  Hashcons.clear ();
  check tint "hash survives a table reset" h (Hashcons.hash_value v);
  check tbool "equality survives a table reset" true
    (Hashcons.equal_value v (copy_value v))

let test_hashcons_binders () =
  let v = Sexp.parse_value "proc(a ce! cc!) (+ a 1 ce! cont(t) (cc! t))" in
  let set, unique = Hashcons.binders_value v in
  check tbool "binders found" true
    (match v with
    | Term.Abs a -> List.for_all (fun id -> Ident.Set.mem id set) a.Term.params
    | _ -> false);
  check tbool "fresh parse is internally unique" true unique;
  (* rebinding the same identifier inside its own scope must clear the
     internal-uniqueness flag — the incremental validator falls back to
     the full unique-binding walk there *)
  let x = Ident.fresh "x" in
  let inner = Term.abs [ x ] (Term.app (Term.var x) []) in
  let dup = Term.abs [ x ] (Term.app inner [ Term.var x ]) in
  let _, unique' = Hashcons.binders_value dup in
  check tbool "duplicate binder detected" false unique'

let () =
  Primitives.install ();
  Alcotest.run "tml_core"
    [
      ( "ident",
        [
          Alcotest.test_case "fresh" `Quick test_ident_fresh;
          Alcotest.test_case "refresh" `Quick test_ident_refresh;
          Alcotest.test_case "make bumps counter" `Quick test_ident_make_bumps_counter;
          Alcotest.test_case "collections" `Quick test_ident_collections;
        ] );
      ( "literal",
        [
          Alcotest.test_case "equality" `Quick test_literal_equal;
          Alcotest.test_case "compare total" `Quick test_literal_compare_total;
        ] );
      ( "term",
        [
          Alcotest.test_case "size" `Quick test_term_size;
          Alcotest.test_case "free vars" `Quick test_term_free_vars;
          Alcotest.test_case "proc/cont kinds" `Quick test_term_kind;
          Alcotest.test_case "alpha equality" `Quick test_alpha_equal;
          Alcotest.test_case "prims used" `Quick test_prims_used;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "equal iff structurally equal" `Quick test_hashcons_equal_iff;
          Alcotest.test_case "measures agree with walkers" `Quick
            test_hashcons_measures_agree;
          Alcotest.test_case "hash is structural and stable" `Quick
            test_hashcons_hash_stable;
          Alcotest.test_case "binder summaries" `Quick test_hashcons_binders;
        ] );
      ( "occurs",
        [
          Alcotest.test_case "paper definition" `Quick test_occurs_basic;
          Alcotest.test_case "count all" `Quick test_occurs_all;
        ] );
      ( "subst",
        [
          Alcotest.test_case "simple" `Quick test_subst_simple;
          Alcotest.test_case "under binder" `Quick test_subst_under_binder;
          Alcotest.test_case "simultaneous" `Quick test_subst_many;
        ] );
      ( "alpha",
        [
          Alcotest.test_case "freshen" `Quick test_alpha_freshen;
          Alcotest.test_case "keeps free variables" `Quick test_alpha_keeps_free;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "round trips" `Quick test_sexp_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_sexp_parse_errors;
          Alcotest.test_case "paper-style printing" `Quick test_pp_paper_style;
        ] );
      ( "prim",
        [
          Alcotest.test_case "registry" `Quick test_prim_registry;
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "effect classes" `Quick test_effect_classes;
          Alcotest.test_case "comments and oids" `Quick test_sexp_comments_and_oids;
        ] );
      ( "wf",
        [
          Alcotest.test_case "well-formed programs" `Quick test_wf_positive;
          Alcotest.test_case "unique binding" `Quick test_wf_double_binding;
          Alcotest.test_case "continuations escape" `Quick test_wf_cont_escape;
          Alcotest.test_case "bad shapes" `Quick test_wf_bad_shapes;
          Alcotest.test_case "scoping" `Quick test_wf_scoping;
        ] );
    ]
