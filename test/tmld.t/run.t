The multi-session server: one tmld process owns the store; concurrent
tmlsh sessions talk to it over the wire protocol.  Unix-socket paths
must stay short (sun_path), so the socket lives under /tmp and the
output is normalized back to a stable name.

  $ SOCK=$(mktemp -u /tmp/tmld-XXXXXX.sock)
  $ norm() { sed "s#$SOCK#tml.sock#g"; }
  $ wait_for() { for _ in $(seq 1 100); do grep -q "$1" "$2" 2>/dev/null && return 0; sleep 0.1; done; echo "timed out waiting for: $1"; cat "$2"; return 1; }

Start the daemon; it creates the store and seeds it with the stdlib.

  $ tmld --store db.tml --socket "$SOCK" --commit-window-ms 1 >server.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done

One session seeds shared state and commits it.

  $ tmlsh <<IN | norm
  > :connect $SOCK
  > let r = relation(tuple(1, 10), tuple(2, 20))
  > :commit
  > :quit
  > IN
  connected to tml.sock (session 0 at epoch 1)
  defined r
  committed 6 objects at epoch 2 (group of 1)

A reader connects (pinning epoch 2) and stays open across a concurrent
writer's commit, fed line by line through a fifo.

  $ mkfifo reader.fifo
  $ tmlsh <reader.fifo >reader.out 2>&1 &
  $ READER=$!
  $ exec 9>reader.fifo
  $ printf ':connect %s\ncount(r)\n' "$SOCK" >&9
  $ wait_for "in 6 instructions" reader.out

A writer session commits a third row while the reader stays pinned.

  $ tmlsh <<IN | norm
  > :connect $SOCK
  > do insert(r, tuple(3, 30)) end
  > :commit
  > :quit
  > IN
  connected to tml.sock (session 2 at epoch 2)
  committed 5 objects at epoch 3 (group of 1)

The pinned reader re-reads: still two rows — the epoch-3 commit is
invisible at its epoch-2 snapshot.  Its own commit is a transaction
boundary: the pin moves forward and the row appears.

  $ printf 'count(r)\n:commit\ncount(r)\n:quit\n' >&9
  $ exec 9>&-
  $ wait "$READER"
  $ cat reader.out | norm
  connected to tml.sock (session 1 at epoch 2)
  - : 2 (in 6 instructions)
  - : 2 (in 6 instructions)
  committed 2 objects at epoch 4 (group of 1)
  - : 3 (in 6 instructions)

Graceful shutdown on SIGTERM: sessions drain, the committer seals its
last group, the socket is removed.

  $ kill -TERM "$SERVER"
  $ wait "$SERVER"
  $ cat server.log | norm
  tmld: serving db.tml on tml.sock
  tmld: stopped
  $ test -S "$SOCK" && echo "socket leaked" || true

The store survives: a fresh daemon serves the committed state.

  $ tmld --store db.tml --socket "$SOCK" >server2.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
  $ tmlsh <<IN | norm
  > :connect $SOCK
  > count(r)
  > :quit
  > IN
  connected to tml.sock (session 0 at epoch 4)
  - : 3 (in 6 instructions)
  $ kill -TERM "$SERVER"
  $ wait "$SERVER"
