(* Tests for the optimizer driver: the expansion pass, the
   reduction/expansion alternation, the penalty mechanism, and the
   configuration presets. *)

open Tml_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let parse_v = Sexp.parse_value

(* ------------------------------------------------------------------ *)
(* Expansion                                                            *)
(* ------------------------------------------------------------------ *)

let multi_use_term () =
  (* f bound to a small procedure used twice: the reduction pass must keep
     it, the expansion pass inlines both call sites *)
  Sexp.parse_app
    "(cont(f) (f 1 ce! cont(t) (f t ce! cc!)) proc(x ce2! cc2!) (+ x 10 ce2! cc2!))"

let test_expand_multi_use () =
  let a = multi_use_term () in
  let r = Expand.expand_app Expand.default a in
  check tbool "expanded" true (r.Expand.expansions >= 1);
  check tbool "grew" true (r.Expand.growth > 0);
  (* a subsequent reduction now folds everything *)
  let reduced = Rewrite.reduce_app r.Expand.term in
  check tbool "constant-folds after expansion" true
    (Term.alpha_equal_by_name_app reduced (Sexp.parse_app "(cc! 21)"))

let test_expand_respects_limit () =
  let a = multi_use_term () in
  let cfg = { Expand.default with Expand.inline_limit = -100 } in
  let r = Expand.expand_app cfg a in
  check tint "nothing inlined under a hostile limit" 0 r.Expand.expansions

let test_expand_growth_budget () =
  let a = multi_use_term () in
  let cfg = { Expand.default with Expand.growth_limit = 1 } in
  let r = Expand.expand_app cfg a in
  check tint "growth budget blocks inlining" 0 r.Expand.expansions

let test_expand_y_unrolling () =
  (* a loop with a constant bound unrolls completely under o3 *)
  let v =
    parse_v
      "proc(z u ce! cc!) (Y lambda(c0! loop! c!) (c! cont() (loop! 3 0) proc(i acc ce2! \
       cc2!) (<= i 0 cont() (cc! acc) cont() (+ acc i ce2! cont(a2) (- i 1 ce2! cont(i2) \
       (loop! i2 a2 ce2! cc2!))))))"
  in
  ignore v;
  (* note: Y members that are procs (with their own ce/cc) are eligible for
     expansion; the simpler cont-member loops are not duplicated.  Unrolling
     is verified behaviourally via semantic preservation in test_props; here
     we check the flag is honoured at all. *)
  let with_y = { Optimizer.o3 with Optimizer.max_rounds = 6 } in
  let _, report = Optimizer.optimize_value ~config:with_y v in
  check tbool "report is sane" true (report.Optimizer.rounds >= 1)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let test_rounds_and_fixpoint () =
  let a = multi_use_term () in
  let a', report = Optimizer.optimize_app a in
  check tbool "optimized to a constant" true
    (Term.alpha_equal_by_name_app a' (Sexp.parse_app "(cc! 21)"));
  check tbool "took more than one round" true (report.Optimizer.rounds >= 2);
  check tbool "cost decreased" true
    (report.Optimizer.cost_after < report.Optimizer.cost_before)

let test_penalty_stops () =
  (* with a tiny penalty limit the optimizer stops early but still returns a
     correct term *)
  let a = multi_use_term () in
  let config = { Optimizer.default with Optimizer.penalty_limit = 0 } in
  let _, report = Optimizer.optimize_app ~config a in
  check tbool "penalty respected" true (report.Optimizer.penalty <= 64)

let test_o1_reduction_only () =
  let a = multi_use_term () in
  let a', report = Optimizer.optimize_app ~config:Optimizer.o1 a in
  check tint "no expansions at O1" 0 report.Optimizer.expansions;
  (* the multi-use binding must still be there *)
  check tbool "binding survives O1" true
    (match a'.Term.func with
    | Term.Abs _ -> true
    | _ -> false)

let test_idempotent () =
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 50 do
    let v = Gen.proc2 rng ~size:25 in
    let once, _ = Optimizer.optimize_value v in
    let twice, _ = Optimizer.optimize_value once in
    (* a second run may still expand more (budgets reset), but must not make
       the term worse *)
    check tbool "second run does not regress cost" true
      (Cost.value_cost twice <= Cost.value_cost once)
  done

let test_wf_preserved () =
  let rng = Random.State.make [| 22 |] in
  for _ = 1 to 100 do
    let v = Gen.proc2 rng ~size:30 in
    let v', _ = Optimizer.optimize_value ~config:Optimizer.o3 v in
    match Wf.check_value v' with
    | Ok () -> ()
    | Error es ->
      Alcotest.failf "optimizer broke well-formedness:@.%s@.%s" (Sexp.print_value v')
        (String.concat "; " (List.map (fun e -> e.Wf.message) es))
  done

let test_report_fields () =
  let v = parse_v "proc(x ce! cc!) (+ 1 2 ce! cont(t) (cc! t))" in
  let v', report = Optimizer.optimize_value v in
  check tbool "size decreased" true (report.Optimizer.size_after < report.Optimizer.size_before);
  check tbool "folded" true (report.Optimizer.stats.Rewrite.fold >= 1);
  check tbool "result mentions 3" true
    (Term.alpha_equal_by_name_value v' (parse_v "proc(x ce! cc!) (cc! 3)"))

let test_with_rules () =
  let hits = ref 0 in
  let rule (a : Term.app) =
    match a.Term.func with
    | Term.Prim "size" ->
      incr hits;
      None
    | _ -> None
  in
  let config = Optimizer.with_rules Optimizer.default [ rule ] in
  let v = parse_v "proc(a u ce! cc!) (size a cc!)" in
  let _ = Optimizer.optimize_value ~config v in
  check tbool "domain rule consulted" true (!hits >= 1)

(* ------------------------------------------------------------------ *)
(* Incremental engine                                                   *)
(* ------------------------------------------------------------------ *)

(* the incremental engine (normal-form memo + physical sharing + delta
   validation) must be a pure performance change: same results as the
   legacy full-re-sweep engine, modulo the stamps freshened by inlining *)
let test_incremental_matches_legacy () =
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 60 do
    let v = Gen.proc2 rng ~size:30 in
    let inc =
      { Optimizer.o3 with Optimizer.incremental = true; validate = true }
    in
    let leg =
      { Optimizer.o3 with Optimizer.incremental = false; validate = true }
    in
    let vi, ri = Optimizer.optimize_value ~config:inc v in
    let vl, rl = Optimizer.optimize_value ~config:leg v in
    check tbool "same optimized term" true (Term.alpha_equal_by_name_value vi vl);
    check tint "same final cost" rl.Optimizer.cost_after ri.Optimizer.cost_after;
    check tint "same final size" rl.Optimizer.size_after ri.Optimizer.size_after
  done

let test_normal_forms_shared () =
  (* a term already in normal form must come back physically unchanged:
     that identity is what lets later rounds skip unchanged siblings O(1) *)
  let a = Sexp.parse_app "(+ x y ce! cc!)" in
  check tbool "normal form returned physically" true (Rewrite.reduce_app a == a);
  let r = Expand.expand_app Expand.default a in
  check tbool "expansion shares an unchanged tree" true (r.Expand.term == a)

(* run [f] with the size gate off: these tests exercise the memo
   machinery itself, on fixtures small enough to be gated otherwise *)
let without_size_gate f =
  let saved = !Rewrite.memo_size_threshold in
  Rewrite.memo_size_threshold := 0;
  Fun.protect ~finally:(fun () -> Rewrite.memo_size_threshold := saved) f

let test_reduce_memo_reuse () =
  without_size_gate (fun () ->
      let memo = Rewrite.fresh_memo () in
      let a = multi_use_term () in
      let r1 = Rewrite.reduce_app ~memo a in
      let misses_after_first = Rewrite.memo_misses memo in
      let r2 = Rewrite.reduce_app ~memo a in
      check tbool "memoized result identical" true (r1 == r2);
      check tbool "second run hits the memo" true (Rewrite.memo_hits memo > 0);
      check tint "second run recomputes nothing" misses_after_first
        (Rewrite.memo_misses memo);
      (* the memo also short-circuits normal forms: reducing the result again
         through the same memo is a single lookup *)
      check tbool "normal form maps to itself" true (Rewrite.reduce_app ~memo r1 == r1))

(* the E11 small-term fix: roots below [memo_size_threshold] skip the
   memo entirely (interning + lookups cost more than re-reducing them),
   larger roots still use it, and the crossover follows the knob *)
let test_memo_size_gate () =
  let small = multi_use_term () in
  check tbool "fixture is below the default threshold" true
    (Term.size_app small < !Rewrite.memo_size_threshold);
  let memo = Rewrite.fresh_memo () in
  let r1 = Rewrite.reduce_app ~memo small in
  let r2 = Rewrite.reduce_app ~memo small in
  check tint "small root never touches the memo" 0
    (Rewrite.memo_hits memo + Rewrite.memo_misses memo);
  let legacy = Rewrite.reduce_app small in
  check tbool "gated path equals the legacy result" true
    (Term.alpha_equal_by_name_app r1 legacy && Term.alpha_equal_by_name_app r2 legacy);
  (* a root past the threshold populates and then hits the memo *)
  let rng = Random.State.make [| 2025 |] in
  let rec gen_large () =
    let v = Gen.proc2 rng ~size:120 in
    if Term.size_value v >= !Rewrite.memo_size_threshold then v else gen_large ()
  in
  let large = gen_large () in
  let memo = Rewrite.fresh_memo () in
  let l1 = Rewrite.reduce_value ~memo large in
  check tbool "large root populates the memo" true (Rewrite.memo_misses memo > 0);
  let l2 = Rewrite.reduce_value ~memo large in
  check tbool "large root answered from the memo" true
    (l1 == l2 && Rewrite.memo_hits memo > 0);
  (* crossover is pinned by the knob: raise it past this root and the
     same reduce goes legacy *)
  let saved = !Rewrite.memo_size_threshold in
  Rewrite.memo_size_threshold := Term.size_value large + 1;
  Fun.protect
    ~finally:(fun () -> Rewrite.memo_size_threshold := saved)
    (fun () ->
      let memo = Rewrite.fresh_memo () in
      ignore (Rewrite.reduce_value ~memo large);
      check tint "raised threshold sends it down the legacy path" 0
        (Rewrite.memo_hits memo + Rewrite.memo_misses memo))

let test_delta_validation_catches_breakage () =
  (* delta validation must still reject a rule that breaks scoping, even
     when most of the tree is skippable: the broken region is new, so it
     is never marked validated *)
  let rogue (a : Term.app) =
    match a.Term.func, a.Term.args with
    | Term.Prim "+", _ ->
      (* rewrite to a reference to a variable that does not exist *)
      Some (Term.app (Term.var (Ident.fresh "ghost")) [])
    | _ -> None
  in
  let config =
    Optimizer.with_rules
      { Optimizer.o2 with Optimizer.validate = true; incremental = true }
      [ rogue ]
  in
  let v = parse_v "proc(x ce! cc!) (+ x 1 ce! cont(t) (cc! t))" in
  match Optimizer.optimize_value ~config v with
  | exception Optimizer.Validation_error _ -> ()
  | _ -> Alcotest.fail "delta validation accepted an out-of-scope reference"

let test_profile_records () =
  Profile.reset ();
  Profile.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Profile.enabled := false;
      Profile.reset ())
    (fun () ->
      let v = parse_v "proc(x ce! cc!) (+ 1 2 ce! cont(t) (cc! t))" in
      let _ = Optimizer.optimize_value ~config:Optimizer.o2 v in
      let p = Profile.global in
      check tbool "reduce passes counted" true (p.Profile.reduce_passes > 0);
      check tbool "optimize calls counted" true (p.Profile.optimize_calls > 0);
      check tbool "rule fires recorded" true (p.Profile.fires.Rewrite.fold >= 1);
      let table = Format.asprintf "%a" Profile.pp p in
      check tbool "report renders" true (String.length table > 0))

let () =
  Primitives.install ();
  Alcotest.run "tml_optimizer"
    [
      ( "expand",
        [
          Alcotest.test_case "inlines multi-use abstractions" `Quick test_expand_multi_use;
          Alcotest.test_case "inline limit" `Quick test_expand_respects_limit;
          Alcotest.test_case "growth budget" `Quick test_expand_growth_budget;
          Alcotest.test_case "Y unrolling flag" `Quick test_expand_y_unrolling;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rounds to fixpoint" `Quick test_rounds_and_fixpoint;
          Alcotest.test_case "penalty stops the loop" `Quick test_penalty_stops;
          Alcotest.test_case "O1 is reduction only" `Quick test_o1_reduction_only;
          Alcotest.test_case "never regresses" `Quick test_idempotent;
          Alcotest.test_case "preserves well-formedness" `Quick test_wf_preserved;
          Alcotest.test_case "report fields" `Quick test_report_fields;
          Alcotest.test_case "domain rules plug in" `Quick test_with_rules;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches the legacy engine" `Quick
            test_incremental_matches_legacy;
          Alcotest.test_case "normal forms are shared" `Quick test_normal_forms_shared;
          Alcotest.test_case "reduction memo reuse" `Quick test_reduce_memo_reuse;
          Alcotest.test_case "memo size gate crossover" `Quick test_memo_size_gate;
          Alcotest.test_case "delta validation still catches breakage" `Quick
            test_delta_validation_catches_breakage;
          Alcotest.test_case "profile records passes" `Quick test_profile_records;
        ] );
    ]
