Every example program must behave identically at every optimization level.
The final `-- done ..., N abstract instructions` line legitimately varies
with the level (that is the point of optimizing), so it is stripped before
diffing; everything the program prints must match the -O0 baseline exactly.

The -O0 baselines, anchored:

  $ tmlc run -O 0 ../../examples/tl/bank.tl | sed '$d'
  low balances: 2
  assets: 25130
  withdraw result: -1

  $ tmlc run -O 0 ../../examples/tl/inventory.tl | sed '$d'
  items: 7
  scarce: 4
  scarce and cheap: 2
  reorders pending: 1
  stock value: 16730

  $ tmlc run -O 0 ../../examples/tl/queens.tl | sed '$d'
  solutions: 92

Static levels 1-3 and the reflective whole-program optimizer (--dynamic)
against the baseline:

  $ for ex in bank inventory queens; do
  >   tmlc run -O 0 ../../examples/tl/$ex.tl | sed '$d' > $ex.base
  >   for opt in "-O 1" "-O 2" "-O 3" "--dynamic"; do
  >     if tmlc run $opt ../../examples/tl/$ex.tl | sed '$d' | diff $ex.base - > /dev/null
  >     then echo "$ex $opt: agrees"
  >     else echo "$ex $opt: DIFFERS"
  >     fi
  >   done
  > done
  bank -O 1: agrees
  bank -O 2: agrees
  bank -O 3: agrees
  bank --dynamic: agrees
  inventory -O 1: agrees
  inventory -O 2: agrees
  inventory -O 3: agrees
  inventory --dynamic: agrees
  queens -O 1: agrees
  queens -O 2: agrees
  queens -O 3: agrees
  queens --dynamic: agrees

Optimization must not make programs slower: the dynamic optimizer's
instruction count on queens stays below the unoptimized count.

  $ base=$(tmlc run -O 0 ../../examples/tl/queens.tl | tail -1 | grep -o '[0-9]* abstract' | grep -o '[0-9]*')
  $ dyn=$(tmlc run --dynamic ../../examples/tl/queens.tl | tail -1 | grep -o '[0-9]* abstract' | grep -o '[0-9]*')
  $ test "$dyn" -lt "$base" && echo "dynamic executes fewer instructions"
  dynamic executes fewer instructions

Tiered execution is on by default in `tmlc run`: hot stored functions are
promoted to the compiled closure tier.  The tier charges exactly the
machine's abstract instruction costs, so with and without it the output —
including the final instruction count, which is deliberately NOT stripped
here — must be byte-identical:

  $ for ex in bank inventory queens; do
  >   tmlc run --dynamic ../../examples/tl/$ex.tl > $ex.jit
  >   tmlc run --dynamic --fno-jit ../../examples/tl/$ex.tl > $ex.nojit
  >   if diff $ex.jit $ex.nojit > /dev/null
  >   then echo "$ex jit on/off: identical, instruction count included"
  >   else echo "$ex jit on/off: DIFFERS"; diff $ex.jit $ex.nojit
  >   fi
  > done
  bank jit on/off: identical, instruction count included
  inventory jit on/off: identical, instruction count included
  queens jit on/off: identical, instruction count included

The comparison is not vacuous — on queens the tier really engages (the
counters are step-deterministic, so they are stable run to run):

  $ tmlc run --dynamic --profile ../../examples/tl/queens.tl | grep '^tier:'
  tier: 1 promotions, 0 deopts, 1 compiled runs, 2 rejections (1 live)

The effect/alias analysis bridge is on by default at every static level;
-O3 with it enabled must behave exactly like -O3 with the purely syntactic
rules (--fno-analysis):

  $ for ex in bank inventory queens; do
  >   tmlc run -O 3 ../../examples/tl/$ex.tl | sed '$d' > $ex.analysis
  >   tmlc run -O 3 --fno-analysis ../../examples/tl/$ex.tl | sed '$d' > $ex.syntactic
  >   if diff $ex.analysis $ex.syntactic > /dev/null
  >   then echo "$ex -O 3 analysis on/off: agrees"
  >   else echo "$ex -O 3 analysis on/off: DIFFERS"
  >   fi
  > done
  bank -O 3 analysis on/off: agrees
  inventory -O 3 analysis on/off: agrees
  queens -O 3 analysis on/off: agrees
