(* Property-based tests (qcheck) over randomly generated, well-formed,
   terminating TML programs: the system-level invariants of DESIGN.md §6.

   Each property uses {!Tml_core.Gen} wrapped as a qcheck arbitrary; cases
   are registered as alcotest cases via QCheck_alcotest. *)

open Tml_core
open Tml_vm

(* A generated program together with two integer inputs. *)
type case = {
  proc : Term.value;
  a : int;
  b : int;
}

let case_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* size = int_range 5 45 in
    let* a = int_range (-20) 20 in
    let* b = int_range (-20) 20 in
    let rng = Random.State.make [| seed; size |] in
    return { proc = Gen.proc2 rng ~size; a; b })

let print_case c =
  Printf.sprintf "a=%d b=%d\n%s" c.a c.b (Sexp.print_value c.proc)

let run_with engine proc a b =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create ~fuel:3_000_000 heap in
  let oid = Value.Heap.alloc_func heap ~name:"p" proc in
  let fn = Value.Oidv oid in
  match engine with
  | `Tree -> Eval.run_proc ctx fn [ Value.Int a; Value.Int b ]
  | `Machine -> Machine.run_proc ctx fn [ Value.Int a; Value.Int b ]

let count = 300

let prop_generated_wf =
  QCheck2.Test.make ~name:"generated programs are well-formed" ~count ~print:print_case
    case_gen (fun c ->
      match Wf.check_value c.proc with
      | Ok () -> true
      | Error _ -> false)

let prop_engines_agree =
  QCheck2.Test.make ~name:"tree evaluator and abstract machine agree" ~count
    ~print:print_case case_gen (fun c ->
      Eval.outcome_equal (run_with `Tree c.proc c.a c.b) (run_with `Machine c.proc c.a c.b))

let prop_optimizer_preserves_semantics =
  QCheck2.Test.make ~name:"optimization preserves observable behaviour" ~count
    ~print:print_case case_gen (fun c ->
      let optimized, _ = Optimizer.optimize_value ~config:Optimizer.o3 c.proc in
      let before = run_with `Machine c.proc c.a c.b in
      let after = run_with `Machine optimized c.a c.b in
      Eval.outcome_equal before after)

let prop_optimizer_preserves_wf =
  QCheck2.Test.make ~name:"optimization preserves well-formedness" ~count ~print:print_case
    case_gen (fun c ->
      let optimized, _ = Optimizer.optimize_value ~config:Optimizer.o3 c.proc in
      Wf.check_value optimized = Ok ())

let prop_reduction_shrinks =
  QCheck2.Test.make ~name:"reduction never grows the tree" ~count ~print:print_case case_gen
    (fun c -> Term.size_value (Rewrite.reduce_value c.proc) <= Term.size_value c.proc)

let prop_reduction_idempotent =
  QCheck2.Test.make ~name:"reduction is idempotent" ~count ~print:print_case case_gen
    (fun c ->
      let once = Rewrite.reduce_value c.proc in
      let twice = Rewrite.reduce_value once in
      Term.equal_value once twice)

let prop_ptml_roundtrip =
  QCheck2.Test.make ~name:"PTML decode ∘ encode = id" ~count ~print:print_case case_gen
    (fun c ->
      let bytes = Tml_store.Ptml.encode_value c.proc in
      Term.equal_value c.proc (Tml_store.Ptml.decode_value bytes))

let prop_sexp_roundtrip =
  QCheck2.Test.make ~name:"concrete syntax round trips (α)" ~count ~print:print_case
    case_gen (fun c ->
      let reparsed = Sexp.parse_value (Sexp.print_value c.proc) in
      Term.alpha_equal_value c.proc reparsed)

let prop_freshen_alpha_equal =
  QCheck2.Test.make ~name:"α-freshening preserves α-equivalence" ~count ~print:print_case
    case_gen (fun c -> Term.alpha_equal_value c.proc (Alpha.freshen_value c.proc))

(* The expansion pass deliberately trades static size for dynamic speed, so
   the static cost of the tree may grow; the dynamic guarantee is the one
   that matters: the optimized program never executes more abstract
   instructions (small slack for differences in closure-construction
   accounting). *)
let steps_of proc a b =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create ~fuel:3_000_000 heap in
  let oid = Value.Heap.alloc_func heap ~name:"p" proc in
  let outcome = Machine.run_proc ctx (Value.Oidv oid) [ Value.Int a; Value.Int b ] in
  outcome, ctx.Runtime.steps

let prop_optimized_not_costlier =
  QCheck2.Test.make ~name:"optimization never slows execution down" ~count
    ~print:print_case case_gen (fun c ->
      let optimized, _ = Optimizer.optimize_value c.proc in
      let o1, s1 = steps_of c.proc c.a c.b in
      let o2, s2 = steps_of optimized c.a c.b in
      match o1, o2 with
      | (Eval.Done _ | Eval.Raised _), _ -> Eval.outcome_equal o1 o2 && s2 <= s1 + 16
      | _ -> true)

(* What reduction alone guarantees: the static cost never grows. *)
let prop_reduced_not_costlier =
  QCheck2.Test.make ~name:"reduction never increases static cost" ~count ~print:print_case
    case_gen (fun c -> Cost.value_cost (Rewrite.reduce_value c.proc) <= Cost.value_cost c.proc)

let prop_reflect_through_store =
  QCheck2.Test.make ~name:"reflective in-place optimization preserves behaviour" ~count:150
    ~print:print_case case_gen (fun c ->
      let heap = Value.Heap.create () in
      let ctx = Runtime.create ~fuel:3_000_000 heap in
      let oid = Value.Heap.alloc_func heap ~name:"p" c.proc in
      let before = Machine.run_proc ctx (Value.Oidv oid) [ Value.Int c.a; Value.Int c.b ] in
      let _ = Tml_reflect.Reflect.optimize_inplace ctx oid in
      let after = Machine.run_proc ctx (Value.Oidv oid) [ Value.Int c.a; Value.Int c.b ] in
      Eval.outcome_equal before after)

let prop_image_roundtrip_runs =
  QCheck2.Test.make ~name:"store image round trip preserves function behaviour" ~count:100
    ~print:print_case case_gen (fun c ->
      let heap = Value.Heap.create () in
      let oid = Value.Heap.alloc_func heap ~name:"p" c.proc in
      let heap' = Image.load (Image.save heap) in
      let ctx = Runtime.create ~fuel:3_000_000 heap in
      let ctx' = Runtime.create ~fuel:3_000_000 heap' in
      let r1 = Machine.run_proc ctx (Value.Oidv oid) [ Value.Int c.a; Value.Int c.b ] in
      let r2 = Machine.run_proc ctx' (Value.Oidv oid) [ Value.Int c.a; Value.Int c.b ] in
      Eval.outcome_equal r1 r2)

(* ------------------------------------------------------------------ *)
(* Query rewriting on random relations                                  *)
(* ------------------------------------------------------------------ *)

type query_case = {
  rows : (int * int * int) list;
  f1 : int;  (* predicate fields *)
  f2 : int;
  v1 : int;  (* thresholds *)
  v2 : int;
  op1 : string;
  op2 : string;
}

let query_case_gen =
  QCheck2.Gen.(
    let* n = int_range 0 30 in
    let* rows =
      list_size (return n) (triple (int_bound 20) (int_bound 20) (int_bound 20))
    in
    let* f1 = int_bound 2 in
    let* f2 = int_bound 2 in
    let* v1 = int_bound 20 in
    let* v2 = int_bound 20 in
    let* op1 = oneofl [ "<"; "<="; ">"; ">="; "==" ] in
    let* op2 = oneofl [ "<"; "<="; ">"; ">="; "==" ] in
    return { rows; f1; f2; v1; v2; op1; op2 })

let print_query_case c =
  Printf.sprintf "rows=%d pred1=(.%d %s %d) pred2=(.%d %s %d)" (List.length c.rows) c.f1
    c.op1 c.v1 c.f2 c.op2 c.v2

let pred_src ~tag ~field ~op ~value =
  if op = "==" then
    Printf.sprintf
      "proc(x%s pce%s! pcc%s!) ([] x%s %d cont(t%s) (== t%s %d cont() (pcc%s! true) cont() \
       (pcc%s! false)))"
      tag tag tag tag field tag tag value tag tag
  else
    Printf.sprintf
      "proc(x%s pce%s! pcc%s!) ([] x%s %d cont(t%s) (%s t%s %d cont() (pcc%s! true) cont() \
       (pcc%s! false)))"
      tag tag tag tag field tag op tag value tag tag

let run_rel_query c term_src ~rewrite =
  Tml_query.Qprims.install ();
  let heap = Value.Heap.create () in
  let ctx = Runtime.create ~fuel:3_000_000 heap in
  let rel =
    Tml_query.Rel.create ctx ~name:"r"
      (List.map (fun (a, b, d) -> [| Value.Int a; Value.Int b; Value.Int d |]) c.rows)
  in
  let term = Sexp.parse_app term_src in
  let term =
    if rewrite then Rewrite.reduce_app ~rules:Tml_query.Qopt.static_rules term else term
  in
  let frees = Ident.Set.elements (Term.free_vars_app term) in
  let env =
    List.fold_left
      (fun env id ->
        let v =
          match id.Ident.name with
          | "r" -> Some (Value.Oidv rel)
          | "halt_ok" -> Some (Value.Halt true)
          | "halt_err" -> Some (Value.Halt false)
          | _ -> None
        in
        match v with
        | Some v -> Ident.Map.add id v env
        | None -> env)
      Ident.Map.empty frees
  in
  Eval.run_app ctx ~env term

let agree c src =
  let o1 = run_rel_query c src ~rewrite:false in
  let o2 = run_rel_query c src ~rewrite:true in
  match o1, o2 with
  | Eval.Done v1, Eval.Done v2 -> Value.identical v1 v2
  | Eval.Raised v1, Eval.Raised v2 -> Value.identical v1 v2
  | _ -> false

let prop_merge_select_agrees =
  QCheck2.Test.make ~name:"merge-select preserves query results" ~count:200
    ~print:print_query_case query_case_gen (fun c ->
      let src =
        Printf.sprintf
          "(select %s r halt_err! cont(tmp) (select %s tmp halt_err! cont(out) (sum \
           proc(xs sce! scc!) ([] xs 0 scc!) out halt_err! cont(s) (count out cont(n) (+ s \
           n halt_err! cont(chk) (halt_ok! chk))))))"
          (pred_src ~tag:"a" ~field:c.f1 ~op:c.op1 ~value:c.v1)
          (pred_src ~tag:"b" ~field:c.f2 ~op:c.op2 ~value:c.v2)
      in
      agree c src)

let prop_select_union_agrees =
  QCheck2.Test.make ~name:"select-over-union preserves query results" ~count:200
    ~print:print_query_case query_case_gen (fun c ->
      let src =
        Printf.sprintf
          "(union r r cont(both) (select %s both halt_err! cont(out) (count out cont(n) \
           (halt_ok! n))))"
          (pred_src ~tag:"a" ~field:c.f1 ~op:c.op1 ~value:c.v1)
      in
      agree c src)

let prop_distinct_swap_agrees =
  QCheck2.Test.make ~name:"select-before-distinct preserves query results" ~count:200
    ~print:print_query_case query_case_gen (fun c ->
      let src =
        Printf.sprintf
          "(distinct r cont(d) (select %s d halt_err! cont(out) (count out cont(n) \
           (halt_ok! n))))"
          (pred_src ~tag:"a" ~field:c.f1 ~op:c.op1 ~value:c.v1)
      in
      agree c src)

let prop_trivial_exists_agrees =
  QCheck2.Test.make ~name:"trivial-exists preserves query results" ~count:200
    ~print:print_query_case query_case_gen (fun c ->
      (* the predicate ignores the row and tests a constant comparison *)
      let src =
        Printf.sprintf
          "(exists proc(x pce! pcc!) (%s %d %d cont() (pcc! true) cont() (pcc! false)) r \
           halt_err! cont(b) (halt_ok! b))"
          (if c.op1 = "==" then "<" else c.op1)
          c.v1 c.v2
      in
      agree c src)

let () =
  Runtime.install ();
  let to_alcotest = QCheck_alcotest.to_alcotest ~speed_level:`Quick in
  Alcotest.run "tml_props"
    [
      ( "properties",
        List.map to_alcotest
          [
            prop_generated_wf;
            prop_engines_agree;
            prop_optimizer_preserves_semantics;
            prop_optimizer_preserves_wf;
            prop_reduction_shrinks;
            prop_reduction_idempotent;
            prop_ptml_roundtrip;
            prop_sexp_roundtrip;
            prop_freshen_alpha_equal;
            prop_optimized_not_costlier;
            prop_reduced_not_costlier;
            prop_reflect_through_store;
            prop_image_roundtrip_runs;
            prop_merge_select_agrees;
            prop_select_union_agrees;
            prop_distinct_swap_agrees;
            prop_trivial_exists_agrees;
          ] );
    ]
