Observability end to end: a traced tmld with a near-zero slow-query
threshold logs every request.  The slow-log entry for an optimized
point query names the plan rule that fired — the same rule :explain
reports — and the Chrome trace written on graceful shutdown is valid
JSON whose commit spans carry fsync group ids.

  $ SOCK=$(mktemp -u /tmp/tmlobs-XXXXXX.sock)
  $ norm() { sed "s#$SOCK#tml.sock#g"; }
  $ wait_for() { for _ in $(seq 1 100); do grep -q "$1" "$2" 2>/dev/null && return 0; sleep 0.1; done; echo "timed out waiting for: $1"; cat "$2"; return 1; }

  $ tmld --store db.tml --socket "$SOCK" --commit-window-ms 1 --slow-ms 0.000001 --trace trace.json >server.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done

One session defines an indexed relation and a point query, optimizes it
server-side — q.index-select fires against the live index — then runs
the optimized query and commits.

  $ tmlsh <<IN | norm
  > :connect $SOCK
  > let r = relation(tuple(1, 10), tuple(2, 20), tuple(3, 30))
  > do mkindex(r, 1) end
  > let hot(): Int = count(select t from t in r where t.1 == 2 end)
  > :optimize hot
  > hot()
  > :commit
  > :quit
  > IN
  connected to tml.sock (session 0 at epoch 1)
  defined r
  defined hot
  optimized hot: static cost 70 -> 10, 0 calls inlined
  - : 1 (in 25 instructions)
  committed 2 objects at epoch 3 (group of 1)

A second session reads the server's introspection surfaces.  The slow
log names the fired plan rule for the hot() request — verifiable
against the function's persistent derivation via :explain.

  $ tmlsh <<IN >introspect.out 2>&1
  > :connect $SOCK
  > :slow
  > :slow json
  > :explain hot
  > :top
  > :stats prom
  > :quit
  > IN
  $ grep -q "hot()" introspect.out && echo "slow log names the query"
  slow log names the query
  $ grep "rules:" introspect.out | head -1 | grep -o "q.index-select"
  q.index-select
  $ grep -o "4. q.index-select" introspect.out
  4. q.index-select
  $ grep -o '"rules":\["eta","beta","q.index-select"\]' introspect.out | head -1
  "rules":["eta","beta","q.index-select"]

:top shows the live sessions and the lock/commit latency percentiles
that decompose request latency.

  $ grep -o "eval_lock.wait_s" introspect.out | head -1
  eval_lock.wait_s
  $ grep -o "tmld: epoch" introspect.out
  tmld: epoch
  $ grep -o "phases (seconds):" introspect.out
  phases (seconds):

:stats prom is Prometheus text exposition of the same registry.

  $ grep -o "# TYPE server_evals counter" introspect.out
  # TYPE server_evals counter
  $ grep -o "# TYPE eval_lock_wait_s summary" introspect.out
  # TYPE eval_lock_wait_s summary

SIGUSR1 dumps the sampling VM profiler as collapsed-stack text next to
the store; the optimized query's steps are attributed to hot().

  $ kill -USR1 "$SERVER"
  $ wait_for "vm profile dumped" server.log
  $ grep -o "hot#" db.tml.prof | head -1
  hot#

Graceful shutdown: the drain closes the trace sink, so the Chrome file
ends with its closing bracket even under SIGTERM.

  $ kill -TERM "$SERVER"
  $ wait "$SERVER"
  $ cat server.log | norm
  tmld: serving db.tml on tml.sock
  tmld: vm profile dumped to db.tml.prof
  tmld: stopped

The slow log is durable: the sidecar survives next to the store and a
restarted server still reports the pre-restart entry.

  $ test -f db.tml.slowlog && echo "sidecar present"
  sidecar present
  $ tmld --store db.tml --socket "$SOCK" >server2.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
  $ tmlsh <<IN >reload.out 2>&1
  > :connect $SOCK
  > :slow
  > :quit
  > IN
  $ grep -q "q.index-select" reload.out && echo "slow log survived the restart"
  slow log survived the restart
  $ kill -TERM "$SERVER"
  $ wait "$SERVER"

The trace is a loadable Chrome document: every commit.group span is
tagged with a positive fsync group id, every commit.sealed instant
joins a request trace id to its group, and the lock-wait/fsync phases
that decompose the E13 tail are all present.

  $ python3 - <<'EOF'
  > import json
  > doc = json.load(open("trace.json"))
  > evs = doc["traceEvents"]
  > groups = [e for e in evs if e.get("name") == "commit.group" and e.get("ph") == "B"]
  > assert groups, "no commit.group span"
  > assert all(e["args"]["group"] >= 1 for e in groups), "commit.group without a group id"
  > sealed = [e for e in evs if e.get("name") == "commit.sealed"]
  > assert sealed, "no commit.sealed instant"
  > assert all(e["args"]["group"] >= 1 and e["args"]["trace"] >= 1 for e in sealed), \
  >     "commit.sealed without trace/group join"
  > names = {e.get("name") for e in evs}
  > for want in ("server.eval", "server.commit", "eval_lock.wait", "eval_lock.hold",
  >              "commit.group", "commit.fsync", "slow.query"):
  >     assert want in names, "missing span: " + want
  > assert all("pid" in e and "tid" in e and "ts" in e for e in evs), "untagged event"
  > print("trace ok")
  > EOF
  trace ok
