An interactive session piped through stdin: definitions, queries,
mutation, reflective optimization, redefinition.

  $ tmlsh <<'IN'
  > let double(x: Int): Int = x * 2
  > double(21)
  > let r = relation(tuple(1, 10), tuple(2, 20))
  > do insert(r, tuple(3, 30)) end
  > count(r)
  > var total := 0; foreach e in r do total := total + e.2 end; total
  > :optimize double
  > double(21)
  > let double(x: Int): Int = x * 4
  > double(21)
  > :quit
  > IN
  defined double
  - : 42 (in 24 instructions)
  defined r
  - : 3 (in 6 instructions)
  - : 60 (in 125 instructions)
  optimized double: static cost 9 -> 3, 1 calls inlined
  - : 42 (in 14 instructions)
  defined double
  - : 84 (in 24 instructions)
