An interactive session piped through stdin: definitions, queries,
mutation, reflective optimization, redefinition.

  $ tmlsh <<'IN'
  > let double(x: Int): Int = x * 2
  > double(21)
  > let r = relation(tuple(1, 10), tuple(2, 20))
  > do insert(r, tuple(3, 30)) end
  > count(r)
  > var total := 0; foreach e in r do total := total + e.2 end; total
  > :optimize double
  > double(21)
  > let double(x: Int): Int = x * 4
  > double(21)
  > :quit
  > IN
  defined double
  - : 42 (in 24 instructions)
  defined r
  - : 3 (in 6 instructions)
  - : 60 (in 125 instructions)
  optimized double: static cost 9 -> 3, 1 calls inlined
  - : 42 (in 14 instructions)
  defined double
  - : 84 (in 24 instructions)

A durable session: bind a store file, mutate, commit, leave.

  $ tmlsh <<'IN'
  > let triple(x: Int): Int = x * 3
  > let r = relation(tuple(1, 10), tuple(2, 20))
  > :open s.tmlstore
  > do insert(r, tuple(3, 30)) end
  > count(r)
  > :commit
  > :quit
  > IN
  defined triple
  defined r
  new store s.tmlstore (committed 58 objects)
  - : 3 (in 6 instructions)
  committed 10 objects to s.tmlstore

A fresh process restores the session from the store: the inserted row is
back, objects are faulted on first dereference, and the reflective
optimizer commits its rewrites durably.

  $ tmlsh <<'IN'
  > :open s.tmlstore
  > count(r)
  > triple(14)
  > :optimize triple
  > :quit
  > IN
  restored session from s.tmlstore (62 objects, faulted on demand)
  - : 3 (in 6 instructions)
  - : 42 (in 24 instructions)
  optimized triple: static cost 9 -> 3, 1 calls inlined

Tiered execution: :tier promotes a function to the compiled closure
tier now (hot functions get there on their own as the session warms up).
The tier charges exactly the machine's abstract instruction costs, so
the per-call counts do not move; redefining the function deoptimizes it
back to the machine.

  $ tmlsh <<'IN'
  > let quad(x: Int): Int = x * 4
  > quad(10)
  > :tier quad
  > quad(10)
  > let quad(x: Int): Int = x * 5
  > quad(10)
  > :quit
  > IN
  defined quad
  - : 40 (in 24 instructions)
  promoted quad to the compiled tier
  - : 40 (in 24 instructions)
  defined quad
  - : 50 (in 24 instructions)

The tier rows of :stats account for the session above: one promotion,
one compiled-tier run, and the deopt fired by the redefinition.

  $ tmlsh <<'IN' | sed -n '/-- tier --/,/compiled_units/p'
  > let quad(x: Int): Int = x * 4
  > :tier quad
  > quad(10)
  > let quad(x: Int): Int = x * 5
  > quad(10)
  > :stats
  > :quit
  > IN
  -- tier --
    promotions                       1
    deopts                           1
    runs                             1
    rejections                       0
    promoted                         0
    compiled_units                   3

The optimized function and its derived attributes survived the last
commit; compaction drops superseded versions.

  $ tmlsh <<'IN' | sed 's/: [0-9]* -> [0-9]* bytes/: LOG -> LIVE bytes/'
  > :open s.tmlstore
  > triple(14)
  > :compact
  > :quit
  > IN
  restored session from s.tmlstore (65 objects, faulted on demand)
  - : 42 (in 14 instructions)
  compacted s.tmlstore: LOG -> LIVE bytes
