(* Tests for the reflective dynamic optimizer (section 4.1). *)

open Tml_core
open Tml_vm
open Tml_frontend
module Reflect = Tml_reflect.Reflect

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let abs_source =
  {|
module complex export
  let mk(x: Real, y: Real): Tuple(Real, Real) = tuple(x, y)
  let re(c: Tuple(Real, Real)): Real = c.1
  let im(c: Tuple(Real, Real)): Real = c.2
end

let cabs(c: Tuple(Real, Real)): Real =
  mathlib.sqrt(complex.re(c) * complex.re(c) + complex.im(c) * complex.im(c))

do io.print_real(cabs(complex.mk(3.0, 4.0))) end
|}

let run_fn ctx fn args =
  let before = ctx.Runtime.steps in
  let outcome = Machine.run_proc ctx fn args in
  outcome, ctx.Runtime.steps - before

let test_optimized_abs () =
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let mk = Value.Oidv (Link.function_oid program "complex.mk") in
  let c =
    match Machine.run_proc ctx mk [ Value.Real 3.0; Value.Real 4.0 ] with
    | Eval.Done v -> v
    | o -> Alcotest.failf "mk: %a" Eval.pp_outcome o
  in
  let abs_oid = Link.function_oid program "cabs" in
  let before, steps_before = run_fn ctx (Value.Oidv abs_oid) [ c ] in
  let result = Reflect.optimize ctx abs_oid in
  let after, steps_after = run_fn ctx (Value.Oidv result.Reflect.oid) [ c ] in
  (match before, after with
  | Eval.Done v1, Eval.Done v2 ->
    check tbool "same value" true (Value.identical v1 v2);
    check tbool "computes 5.0" true (Value.identical v1 (Value.Real 5.0))
  | o1, o2 -> Alcotest.failf "before %a, after %a" Eval.pp_outcome o1 Eval.pp_outcome o2);
  check tbool "faster" true (steps_after < steps_before);
  check tbool "inlined across the barrier" true (result.Reflect.inlined_calls >= 4);
  (* the optimized body no longer calls through the store: no function OID
     literals remain in call position *)
  (match result.Reflect.optimized_tml with
  | Term.Abs a ->
    let store_calls = ref 0 in
    Term.iter_apps
      (fun node ->
        match node.Term.func with
        | Term.Lit (Literal.Oid _) -> incr store_calls
        | _ -> ())
      a.Term.body;
    check tint "no cross-barrier calls left" 0 !store_calls
  | _ -> Alcotest.fail "expected abs");
  (* the original is untouched and still runs *)
  match run_fn ctx (Value.Oidv abs_oid) [ c ] with
  | (Eval.Done v, _) -> check tbool "original intact" true (Value.identical v (Value.Real 5.0))
  | (o, _) -> Alcotest.failf "original broken: %a" Eval.pp_outcome o

let test_attrs_cached () =
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let abs_oid = Link.function_oid program "cabs" in
  let result = Reflect.optimize ctx abs_oid in
  (match Value.Heap.get ctx.Runtime.heap result.Reflect.oid with
  | Value.Func fo ->
    check tbool "cost_before cached" true (List.mem_assoc "cost_before" fo.Value.fo_attrs);
    check tbool "cost_after cached" true (List.mem_assoc "cost_after" fo.Value.fo_attrs)
  | _ -> Alcotest.fail "not a function");
  match Value.Heap.get ctx.Runtime.heap abs_oid with
  | Value.Func fo ->
    check tbool "original records its optimized version" true
      (List.mem_assoc "optimized_as" fo.Value.fo_attrs)
  | _ -> Alcotest.fail "not a function"

let test_ptml_path () =
  (* decoding from PTML must agree with the in-memory tree *)
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let abs_oid = Link.function_oid program "cabs" in
  let r1 = Reflect.optimize ~config:{ Reflect.default with Reflect.use_ptml = true } ctx abs_oid in
  let r2 =
    Reflect.optimize ~config:{ Reflect.default with Reflect.use_ptml = false } ctx abs_oid
  in
  check tbool "same optimization from PTML and memory" true
    (Term.alpha_equal_value r1.Reflect.optimized_tml r2.Reflect.optimized_tml)

let test_inline_budget () =
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let abs_oid = Link.function_oid program "cabs" in
  let result =
    Reflect.optimize ~config:{ Reflect.default with Reflect.inline_budget = 0 } ctx abs_oid
  in
  check tint "budget 0 inlines nothing" 0 result.Reflect.inlined_calls

let test_store_fold () =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let vec = Value.Heap.alloc heap (Value.Vector [| Value.Int 10; Value.Int 20 |]) in
  let arr = Value.Heap.alloc heap (Value.Array [| Value.Int 10; Value.Int 20 |]) in
  let src oid = Printf.sprintf "([] <oid %d> 1 k!)" (Oid.to_int oid) in
  (* immutable vector: folds to the element *)
  let folded = Rewrite.reduce_app ~rules:[ Reflect.store_fold ctx ] (Sexp.parse_app (src vec)) in
  check tbool "vector read folded" true
    (Term.alpha_equal_by_name_app folded (Sexp.parse_app "(k! 20)"));
  (* mutable array: never folded *)
  let kept = Rewrite.reduce_app ~rules:[ Reflect.store_fold ctx ] (Sexp.parse_app (src arr)) in
  check tbool "array read kept" true
    (match kept.Term.func with
    | Term.Prim "[]" -> true
    | _ -> false);
  (* size of an immutable object folds *)
  let sized =
    Rewrite.reduce_app ~rules:[ Reflect.store_fold ctx ]
      (Sexp.parse_app (Printf.sprintf "(size <oid %d> k!)" (Oid.to_int vec)))
  in
  check tbool "size folded" true
    (Term.alpha_equal_by_name_app sized (Sexp.parse_app "(k! 2)"))

let test_inplace_recursive () =
  (* optimizing in place keeps self-recursive calls correct: the oid literal
     embedded in the optimized body points back at the *updated* object *)
  let src =
    {|
let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end
do io.print_int(fib(14)) end
|}
  in
  let program = Link.load src in
  let ctx = program.Link.ctx in
  let outcome1, steps1 = Link.run_main program ~engine:`Machine () in
  (match outcome1 with
  | Eval.Done _ -> ()
  | o -> Alcotest.failf "unoptimized: %a" Eval.pp_outcome o);
  Reflect.optimize_all ctx (Link.all_function_oids program);
  let outcome2, steps2 = Link.run_main program ~engine:`Machine () in
  (match outcome2 with
  | Eval.Done _ -> ()
  | o -> Alcotest.failf "optimized: %a" Eval.pp_outcome o);
  let out = Link.output program in
  check tbool "both outputs are fib(14)=377" true (out = "377377");
  check tbool "dynamic optimization pays off" true (steps2 < steps1)

let test_optimize_all_improves_stanford () =
  let r_static = Tml_stanford.Suite.run "intmm" Tml_stanford.Suite.Static in
  let r_dynamic = Tml_stanford.Suite.run "intmm" Tml_stanford.Suite.Dynamic in
  check tbool "outputs agree" true (r_static.Tml_stanford.Suite.output = r_dynamic.Tml_stanford.Suite.output);
  check tbool "dynamic materially faster" true
    (float_of_int r_static.Tml_stanford.Suite.steps
    > 1.3 *. float_of_int r_dynamic.Tml_stanford.Suite.steps)

let test_inline_query_arg () =
  (* a function OID in the predicate position of a select is substituted by
     its body, exposing the field-equality shape to the index rule *)
  let program =
    Link.load
      {|
let aged38(e: Tuple(Int, Int, Int)): Bool = e.2 == 38
let employees = relation(tuple(1, 38, 100), tuple(2, 40, 200))
do mkindex(employees, 2) end
|}
  in
  let ctx = program.Link.ctx in
  (match Link.run_main program ~engine:`Machine () with
  | Eval.Done _, _ -> ()
  | o, _ -> Alcotest.failf "setup failed: %a" Eval.pp_outcome o);
  (* make the predicate self-contained first *)
  let pred_oid = Link.function_oid program "aged38" in
  let _ = Reflect.optimize_inplace ctx pred_oid in
  let rel_oid =
    match Hashtbl.find_opt program.Link.globals "employees" with
    | Some (Value.Oidv o) -> o
    | _ -> Alcotest.fail "no employees relation"
  in
  let query =
    Sexp.parse_app
      (Printf.sprintf "(select <oid %d> <oid %d> ce! k!)" (Oid.to_int pred_oid)
         (Oid.to_int rel_oid))
  in
  let budget = ref 8 in
  let count = ref 0 in
  let rules =
    [ Reflect.inline_query_arg ctx ~budget ~limit:200 ~count ]
    @ Tml_query.Qopt.static_rules
    @ Tml_query.Qopt.runtime_rules ctx
  in
  let optimized = Rewrite.reduce_app ~rules (Rewrite.reduce_app ~rules query) in
  check tbool "predicate inlined" true (!count >= 1);
  check tbool "index rule fired after inlining" true
    (Term.exists_app
       (fun node ->
         match node.Term.func with
         | Term.Prim "indexselect" -> true
         | _ -> false)
       optimized)

let test_errors () =
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let arr = Value.Heap.alloc heap (Value.Array [||]) in
  (match Reflect.optimize ctx arr with
  | exception Runtime.Fault _ -> ()
  | _ -> Alcotest.fail "optimizing a non-function must fault");
  match Reflect.optimize_value ctx (Value.Int 3) with
  | exception Runtime.Fault _ -> ()
  | _ -> Alcotest.fail "optimizing a non-reference must fault"

(* ------------------------------------------------------------------ *)
(* Specialization cache                                                 *)
(* ------------------------------------------------------------------ *)

let test_speccache_hit () =
  Speccache.clear ();
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let abs_oid = Link.function_oid program "cabs" in
  let r1 = Reflect.optimize ctx abs_oid in
  let s = Speccache.stats () in
  let hits0 = s.Speccache.hits and stores0 = s.Speccache.stores in
  check tbool "first optimization stored an entry" true (stores0 >= 1);
  let r2 = Reflect.optimize ctx abs_oid in
  let s = Speccache.stats () in
  check tbool "second optimization is a cache hit" true (s.Speccache.hits > hits0);
  check tint "hit stores nothing new" stores0 s.Speccache.stores;
  check tbool "cached result agrees with the fresh one" true
    (Term.alpha_equal_value r1.Reflect.optimized_tml r2.Reflect.optimized_tml);
  check tint "cached report: rounds" r1.Reflect.report.Optimizer.rounds
    r2.Reflect.report.Optimizer.rounds;
  check tint "cached report: final cost" r1.Reflect.report.Optimizer.cost_after
    r2.Reflect.report.Optimizer.cost_after;
  check tint "cached inline count" r1.Reflect.inlined_calls r2.Reflect.inlined_calls

let test_speccache_invalidate_on_dep_change () =
  Speccache.clear ();
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let abs_oid = Link.function_oid program "cabs" in
  let re_oid = Link.function_oid program "complex.re" in
  ignore (Reflect.optimize ctx abs_oid);
  (* cabs inlined complex.re, so its entry depends on that object;
     rewriting it in place must drop the entry *)
  let misses0 = (Speccache.stats ()).Speccache.misses in
  ignore (Reflect.optimize_inplace ctx re_oid);
  ignore (Reflect.optimize ctx abs_oid);
  check tbool "re-optimization after dependency rewrite is a miss" true
    ((Speccache.stats ()).Speccache.misses > misses0)

let test_speccache_verify_on_hit () =
  (* a dependency mutated behind the cache's back (no [invalidate] call)
     is caught by digest verification at [find] time *)
  Speccache.clear ();
  let heap = Value.Heap.create () in
  let ctx = Runtime.create heap in
  let vec = Value.Heap.alloc heap (Value.Vector [| Value.Int 10; Value.Int 20 |]) in
  let tml =
    Sexp.parse_value
      (Printf.sprintf "proc(u ce! cc!) ([] <oid %d> 1 cont(t) (cc! t))" (Oid.to_int vec))
  in
  let f = Value.Heap.alloc_func heap ~name:"readvec" tml in
  let r1 = Reflect.optimize ctx f in
  let folded v =
    Term.exists_app
      (fun node -> List.exists (fun a -> Term.equal_value a (Term.int v)) node.Term.args)
      (match r1.Reflect.optimized_tml with
      | Term.Abs a -> a.Term.body
      | _ -> Alcotest.fail "expected abs")
  in
  check tbool "vector read folded into the body" true (folded 20);
  Value.Heap.set heap vec (Value.Vector [| Value.Int 10; Value.Int 77 |]);
  let vf0 = (Speccache.stats ()).Speccache.verify_failures in
  let r2 = Reflect.optimize ctx f in
  check tbool "stale entry rejected by digest verification" true
    ((Speccache.stats ()).Speccache.verify_failures > vf0);
  check tbool "fresh optimization sees the new value" true
    (Term.exists_app
       (fun node -> List.exists (fun a -> Term.equal_value a (Term.int 77)) node.Term.args)
       (match r2.Reflect.optimized_tml with
       | Term.Abs a -> a.Term.body
       | _ -> Alcotest.fail "expected abs"))

let test_speccache_encode_decode () =
  Speccache.clear ();
  let program = Link.load abs_source in
  let ctx = program.Link.ctx in
  let abs_oid = Link.function_oid program "cabs" in
  ignore (Reflect.optimize ctx abs_oid);
  let n = Speccache.length () in
  check tbool "entries live" true (n >= 1);
  let image = Speccache.encode () in
  Speccache.clear ();
  check tint "cleared" 0 (Speccache.length ());
  Speccache.decode image;
  check tint "entries restored" n (Speccache.length ());
  (* the restored entries serve hits against the same heap *)
  let hits0 = (Speccache.stats ()).Speccache.hits in
  ignore (Reflect.optimize ctx abs_oid);
  check tbool "restored entry serves a hit" true ((Speccache.stats ()).Speccache.hits > hits0);
  match Speccache.decode "not a speccache image" with
  | exception Speccache.Corrupt _ -> ()
  | () -> Alcotest.fail "garbage image accepted"

let test_speccache_obj_digests () =
  let rel tail indexes =
    Value.Relation
      {
        Value.rel_name = "t";
        rel_page_size = 4096;
        rel_pages = [||];
        rel_tail = tail;
        rel_tail_len = Array.length tail;
        rel_count = Array.length tail;
        rel_indexes = indexes;
        rel_stats = None;
        rel_triggers = [];
        rel_rows_cache = None;
      }
  in
  let d = Speccache.obj_digest in
  (* rows influence execution, never plan shape: excluded from the digest *)
  check tbool "relation rows excluded" true
    (d (rel [| Value.Int 1 |] []) = d (rel [| Value.Int 2; Value.Int 3 |] []));
  check tbool "relation indexes included" false
    (d (rel [||] []) = d (rel [||] [ 0, Oid.of_int 99 ]));
  (* index/stats digests bucket their magnitudes: warm plans stay valid
     across small growth, invalidate when the statistic's log2 moves *)
  let ix n =
    let tbl = Hashtbl.create 8 in
    for i = 1 to n do
      Hashtbl.replace tbl (Literal.Int i) [ i ]
    done;
    Value.Index { Value.ix_field = 0; ix_tbl = tbl }
  in
  check tbool "index distinct bucketed (same log2)" true (d (ix 2) = d (ix 3));
  check tbool "index distinct bucketed (log2 moved)" false (d (ix 2) = d (ix 4));
  let st n =
    Value.Stats { Value.st_count = n; st_arity = 2; st_distinct = [ 0, 4 ] }
  in
  check tbool "stats count bucketed (same log2)" true (d (st 4) = d (st 7));
  check tbool "stats count bucketed (log2 moved)" false (d (st 4) = d (st 8));
  (* a function's derived attributes are optimizer output, not input *)
  let fo attrs ptml =
    Value.Func
      {
        Value.fo_name = "f";
        fo_tml = Term.prim "id";
        fo_ptml = ptml;
        fo_bindings = [];
        fo_tree_impl = None;
        fo_mach_impl = None;
        fo_code = None;
        fo_attrs = attrs;
      }
  in
  check tbool "func attrs excluded" true (d (fo [] "P") = d (fo [ "cost", 3 ] "P"));
  check tbool "func ptml included" false (d (fo [] "P") = d (fo [] "Q"));
  (* mutable slots: only the length is stable enough to key on *)
  check tbool "array content excluded" true
    (d (Value.Array [| Value.Int 1 |]) = d (Value.Array [| Value.Int 2 |]));
  check tbool "array length included" false
    (d (Value.Array [| Value.Int 1 |]) = d (Value.Array [| Value.Int 1; Value.Int 2 |]));
  (* immutable slots are part of what store_fold reads *)
  check tbool "vector content included" false
    (d (Value.Vector [| Value.Int 1 |]) = d (Value.Vector [| Value.Int 2 |]))

let test_speccache_lru_bound () =
  Speccache.clear ();
  Speccache.set_capacity 2;
  Fun.protect
    ~finally:(fun () ->
      Speccache.set_capacity 256;
      Speccache.clear ())
    (fun () ->
      let heap = Value.Heap.create () in
      let ctx = Runtime.create heap in
      let mk i =
        Value.Heap.alloc_func heap
          ~name:(Printf.sprintf "f%d" i)
          (Sexp.parse_value (Printf.sprintf "proc(x ce! cc!) (+ x %d ce! cc!)" i))
      in
      let f1 = mk 1 and f2 = mk 2 and f3 = mk 3 in
      ignore (Reflect.optimize ctx f1);
      ignore (Reflect.optimize ctx f2);
      ignore (Reflect.optimize ctx f3);
      check tbool "capacity respected" true (Speccache.length () <= 2);
      check tbool "eviction counted" true ((Speccache.stats ()).Speccache.evictions >= 1))

let () =
  Runtime.install ();
  Alcotest.run "tml_reflect"
    [
      ( "reflect",
        [
          Alcotest.test_case "section 4.1 optimizedAbs" `Quick test_optimized_abs;
          Alcotest.test_case "derived attributes cached" `Quick test_attrs_cached;
          Alcotest.test_case "PTML and memory paths agree" `Quick test_ptml_path;
          Alcotest.test_case "inline budget respected" `Quick test_inline_budget;
          Alcotest.test_case "store folds respect mutability" `Quick test_store_fold;
          Alcotest.test_case "in-place with recursion" `Quick test_inplace_recursive;
          Alcotest.test_case "improves a Stanford benchmark" `Quick
            test_optimize_all_improves_stanford;
          Alcotest.test_case "query-argument inlining (view expansion)" `Quick
            test_inline_query_arg;
          Alcotest.test_case "error handling" `Quick test_errors;
        ] );
      ( "speccache",
        [
          Alcotest.test_case "repeated optimization hits" `Quick test_speccache_hit;
          Alcotest.test_case "dependency rewrite invalidates" `Quick
            test_speccache_invalidate_on_dep_change;
          Alcotest.test_case "verify-on-hit catches silent mutation" `Quick
            test_speccache_verify_on_hit;
          Alcotest.test_case "encode/decode round trip" `Quick test_speccache_encode_decode;
          Alcotest.test_case "per-kind digests" `Quick test_speccache_obj_digests;
          Alcotest.test_case "LRU bound" `Quick test_speccache_lru_bound;
        ] );
    ]
