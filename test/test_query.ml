(* Tests for the query substrate: relations, query primitives, and the
   algebraic / runtime rewrite rules of section 4.2. *)

open Tml_core
open Tml_vm
open Tml_query

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let fresh_ctx () =
  Qprims.install ();
  Runtime.create (Value.Heap.create ())

let employee_rows =
  [
    [| Value.Int 1; Value.Int 23; Value.Int 4100 |];
    [| Value.Int 2; Value.Int 38; Value.Int 6500 |];
    [| Value.Int 3; Value.Int 38; Value.Int 5200 |];
    [| Value.Int 4; Value.Int 55; Value.Int 8000 |];
    [| Value.Int 5; Value.Int 29; Value.Int 4600 |];
  ]

let with_employees f =
  let ctx = fresh_ctx () in
  let rel = Rel.create ctx ~name:"employees" employee_rows in
  f ctx rel

(* Run a TML application whose free identifiers are bound by [bindings]. *)
let run_tml ctx bindings src =
  let a = Sexp.parse_app src in
  let frees = Ident.Set.elements (Term.free_vars_app a) in
  let env =
    List.fold_left
      (fun env id ->
        match List.assoc_opt id.Ident.name bindings with
        | Some v -> Ident.Map.add id v env
        | None -> env)
      Ident.Map.empty frees
  in
  let env =
    List.fold_left
      (fun env id ->
        match id.Ident.name with
        | "halt_ok" -> Ident.Map.add id (Value.Halt true) env
        | "halt_err" -> Ident.Map.add id (Value.Halt false) env
        | _ -> env)
      env frees
  in
  Eval.run_app ctx ~env a

(* ------------------------------------------------------------------ *)
(* Rel                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rel_basics () =
  with_employees (fun ctx rel ->
      check tint "five rows" 5 (Array.length (Rel.rows ctx rel));
      let row0 = (Rel.rows ctx rel).(0) in
      let fields = Rel.row_tuple ctx row0 in
      check tbool "field access" true (Value.identical fields.(2) (Value.Int 4100));
      Rel.insert ctx rel [| Value.Int 6; Value.Int 41; Value.Int 7000 |];
      check tint "after insert" 6 (Array.length (Rel.rows ctx rel)))

let test_rel_index () =
  with_employees (fun ctx rel ->
      check tbool "no index yet" true (Rel.find_index ctx rel 1 = None);
      Rel.add_index ctx rel 1;
      (match Rel.lookup ctx rel ~field:1 (Literal.Int 38) with
      | Some positions -> check tint "two aged 38" 2 (List.length positions)
      | None -> Alcotest.fail "index missing");
      (* inserts maintain the index *)
      Rel.insert ctx rel [| Value.Int 6; Value.Int 38; Value.Int 100 |];
      match Rel.lookup ctx rel ~field:1 (Literal.Int 38) with
      | Some positions -> check tint "three after insert" 3 (List.length positions)
      | None -> Alcotest.fail "index missing after insert")

(* ------------------------------------------------------------------ *)
(* Query primitives (through the evaluator)                             *)
(* ------------------------------------------------------------------ *)

let test_prim_select_count () =
  with_employees (fun ctx rel ->
      let outcome =
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(select proc(x pce! pcc!) ([] x 1 cont(age) (>= age 38 cont() (pcc! true) cont() \
           (pcc! false))) r halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
      in
      match outcome with
      | Eval.Done (Value.Int n) -> check tint "three at least 38" 3 n
      | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o)

let test_prim_select_preserves_identity () =
  with_employees (fun ctx rel ->
      let outcome =
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(select proc(x pce! pcc!) (pcc! true) r halt_err! cont(out) ([] out 0 cont(row) \
           (halt_ok! row)))"
      in
      ignore outcome;
      (* row identity: the selected relation contains the same tuple oids *)
      let orig_first = (Rel.rows ctx rel).(0) in
      match outcome with
      | Eval.Done v -> check tbool "same row oid" true (Value.identical v orig_first)
      | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o)

let test_prim_project () =
  with_employees (fun ctx rel ->
      let outcome =
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(project proc(x pce! pcc!) ([] x 2 cont(sal) (tuple sal cont(t) (pcc! t))) r \
           halt_err! cont(out) ([] out 3 cont(row) ([] row 0 cont(s) (halt_ok! s))))"
      in
      match outcome with
      | Eval.Done (Value.Int 8000) -> ()
      | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o)

let test_prim_join () =
  let ctx = fresh_ctx () in
  let r1 = Rel.create ctx ~name:"a" [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 2 |]; [| Value.Int 3 |] ] in
  let outcome =
    run_tml ctx
      [ "r1", Value.Oidv r1; "r2", Value.Oidv r2 ]
      "(join proc(x y pce! pcc!) ([] x 0 cont(a) ([] y 0 cont(b) (== a b cont() (pcc! true) \
       cont() (pcc! false)))) r1 r2 halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
  in
  match outcome with
  | Eval.Done (Value.Int 1) -> ()
  | o -> Alcotest.failf "join: %a" Eval.pp_outcome o

let test_prim_exists_empty_sum () =
  with_employees (fun ctx rel ->
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           "(exists proc(x pce! pcc!) ([] x 1 cont(a) (> a 50 cont() (pcc! true) cont() \
            (pcc! false))) r halt_err! cont(b) (halt_ok! b))"
       with
      | Eval.Done (Value.Bool true) -> ()
      | o -> Alcotest.failf "exists: %a" Eval.pp_outcome o);
      (match
         run_tml ctx [ "r", Value.Oidv rel ] "(empty r cont(b) (halt_ok! b))"
       with
      | Eval.Done (Value.Bool false) -> ()
      | o -> Alcotest.failf "empty: %a" Eval.pp_outcome o);
      match
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(sum proc(x pce! pcc!) ([] x 2 pcc!) r halt_err! cont(s) (halt_ok! s))"
      with
      | Eval.Done (Value.Int 28400) -> ()
      | o -> Alcotest.failf "sum: %a" Eval.pp_outcome o)

let test_prim_exceptions_propagate () =
  with_employees (fun ctx rel ->
      match
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(select proc(x pce! pcc!) (pce! \"pred failed\") r halt_err! cont(out) (halt_ok! \
           out))"
      with
      | Eval.Raised (Value.Str "pred failed") -> ()
      | o -> Alcotest.failf "expected Raised, got %a" Eval.pp_outcome o)

let test_prim_indexselect () =
  with_employees (fun ctx rel ->
      Rel.add_index ctx rel 1;
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           "(indexselect r 1 38 halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
       with
      | Eval.Done (Value.Int 2) -> ()
      | o -> Alcotest.failf "indexselect: %a" Eval.pp_outcome o);
      (* without an index it degrades to a scan with identical results *)
      match
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(indexselect r 2 8000 halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
      with
      | Eval.Done (Value.Int 1) -> ()
      | o -> Alcotest.failf "indexselect scan: %a" Eval.pp_outcome o)

let test_prim_set_ops () =
  let ctx = fresh_ctx () in
  let r1 =
    Rel.create ctx ~name:"a" [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 2 |] ]
  in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 2 |]; [| Value.Int 3 |] ] in
  let bindings = [ "r1", Value.Oidv r1; "r2", Value.Oidv r2 ] in
  let count_of src =
    match run_tml ctx bindings src with
    | Eval.Done (Value.Int n) -> n
    | o -> Alcotest.failf "%s: %a" src Eval.pp_outcome o
  in
  check tint "union is multiset" 5 (count_of "(union r1 r2 cont(u) (count u cont(n) (halt_ok! n)))");
  check tint "inter by content" 2
    (count_of "(inter r1 r2 cont(u) (count u cont(n) (halt_ok! n)))");
  check tint "diff by content" 1
    (count_of "(diff r1 r2 cont(u) (count u cont(n) (halt_ok! n)))");
  check tint "distinct" 2 (count_of "(distinct r1 cont(u) (count u cont(n) (halt_ok! n)))")

let test_triggers () =
  let ctx = fresh_ctx () in
  let log = Rel.create ctx ~name:"audit" [] in
  let data = Rel.create ctx ~name:"data" [] in
  (* the trigger copies every inserted tuple's first field into the audit
     relation, doubled *)
  let trigger_src =
    Printf.sprintf
      "proc(row tce! tcc!) ([] row 0 cont(v) (+ v v tce! cont(d) (tuple d cont(t) (insert \
       <oid %d> t tce! tcc!))))"
      (Oid.to_int log)
  in
  let trigger = Sexp.parse_value trigger_src in
  let heap = ctx.Runtime.heap in
  let trigger_oid = Value.Heap.alloc_func heap ~name:"audit_trigger" trigger in
  let bindings = [ "r", Value.Oidv data ] in
  (match
     run_tml ctx bindings
       (Printf.sprintf "(ontrigger r <oid %d> cont(u) (halt_ok! u))" (Oid.to_int trigger_oid))
   with
  | Eval.Done Value.Unit -> ()
  | o -> Alcotest.failf "ontrigger: %a" Eval.pp_outcome o);
  (match
     run_tml ctx bindings
       "(tuple 21 cont(t) (insert r t halt_err! cont(u) (halt_ok! u)))"
   with
  | Eval.Done Value.Unit -> ()
  | o -> Alcotest.failf "insert with trigger: %a" Eval.pp_outcome o);
  check tint "row inserted" 1 (Array.length (Rel.rows ctx data));
  check tint "trigger fired into audit" 1 (Array.length (Rel.rows ctx log));
  let audit_row = Rel.row_tuple ctx (Rel.rows ctx log).(0) in
  check tbool "trigger saw the tuple" true (Value.identical audit_row.(0) (Value.Int 42));
  (* a raising trigger propagates through the exception continuation; the
     row stays inserted (triggers run after the update) *)
  let bad = Sexp.parse_value "proc(row tce! tcc!) (tce! \"trigger says no\")" in
  let bad_oid = Value.Heap.alloc_func heap ~name:"bad_trigger" bad in
  (match
     run_tml ctx bindings
       (Printf.sprintf "(ontrigger r <oid %d> cont(u) (halt_ok! u))" (Oid.to_int bad_oid))
   with
  | Eval.Done Value.Unit -> ()
  | o -> Alcotest.failf "ontrigger 2: %a" Eval.pp_outcome o);
  (match
     run_tml ctx bindings
       "(tuple 5 cont(t) (insert r t halt_err! cont(u) (halt_ok! u)))"
   with
  | Eval.Raised (Value.Str "trigger says no") -> ()
  | o -> Alcotest.failf "raising trigger: %a" Eval.pp_outcome o);
  check tint "row still inserted" 2 (Array.length (Rel.rows ctx data))

let test_prim_aggregates () =
  with_employees (fun ctx rel ->
      let salary = "proc(x ace! acc!) ([] x 2 acc!)" in
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           (Printf.sprintf "(minagg %s r halt_err! cont(m) (halt_ok! m))" salary)
       with
      | Eval.Done (Value.Int 4100) -> ()
      | o -> Alcotest.failf "minagg: %a" Eval.pp_outcome o);
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           (Printf.sprintf "(maxagg %s r halt_err! cont(m) (halt_ok! m))" salary)
       with
      | Eval.Done (Value.Int 8000) -> ()
      | o -> Alcotest.failf "maxagg: %a" Eval.pp_outcome o);
      (* empty relation raises *)
      let empty_rel = Rel.create ctx ~name:"none" [] in
      match
        run_tml ctx
          [ "r", Value.Oidv empty_rel ]
          (Printf.sprintf "(minagg %s r halt_err! cont(m) (halt_ok! m))" salary)
      with
      | Eval.Raised _ -> ()
      | o -> Alcotest.failf "minagg on empty: %a" Eval.pp_outcome o)

(* ------------------------------------------------------------------ *)
(* Algebraic rewrite rules                                              *)
(* ------------------------------------------------------------------ *)

let count_prim name a =
  let n = ref 0 in
  Term.iter_apps
    (fun node ->
      match node.Term.func with
      | Term.Prim p when p = name -> incr n
      | _ -> ())
    a;
  !n

let field_pred ~field ~value =
  Printf.sprintf
    "proc(x pce%d! pcc%d!) ([] x %d cont(t%d) (== t%d %d cont() (pcc%d! true) cont() (pcc%d! \
     false)))"
    field field field field field value field field

let test_merge_select_applies () =
  let src =
    Printf.sprintf
      "(select %s r ce! cont(tmp) (select %s tmp ce! k!))"
      (field_pred ~field:0 ~value:1)
      (field_pred ~field:1 ~value:2)
  in
  let a = Sexp.parse_app src in
  check tint "two selects before" 2 (count_prim "select" a);
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "one select after" 1 (count_prim "select" a')

let test_merge_select_preconditions () =
  (* different exception continuations block the merge *)
  let src =
    Printf.sprintf "(select %s r ce1! cont(tmp) (select %s tmp ce2! k!))"
      (field_pred ~field:0 ~value:1)
      (field_pred ~field:1 ~value:2)
  in
  let a = Sexp.parse_app src in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "merge blocked by differing ce" 2 (count_prim "select" a');
  (* intermediate relation used twice blocks the merge *)
  let src2 =
    Printf.sprintf "(select %s r ce! cont(tmp) (select %s tmp ce! cont(out) (join jp tmp out \
     ce! k!)))"
      (field_pred ~field:0 ~value:1)
      (field_pred ~field:1 ~value:2)
  in
  let a2 = Sexp.parse_app src2 in
  let a2' = Rewrite.reduce_app ~rules:Qopt.static_rules a2 in
  check tint "merge blocked by shared intermediate" 2 (count_prim "select" a2')

let test_merge_select_semantics () =
  (* chained and merged runs produce the same rows *)
  with_employees (fun ctx rel ->
      let chained_src =
        Printf.sprintf
          "(select %s r halt_err! cont(tmp) (select %s tmp halt_err! cont(out) (sum \
           proc(x spce! spcc!) ([] x 0 spcc!) out halt_err! cont(s) (halt_ok! s))))"
          (field_pred ~field:1 ~value:38)
          (field_pred ~field:2 ~value:5200)
      in
      let a = Sexp.parse_app chained_src in
      let merged = Rewrite.reduce_app ~rules:Qopt.static_rules a in
      let run term =
        let frees = Ident.Set.elements (Term.free_vars_app term) in
        let env =
          List.fold_left
            (fun env id ->
              let v =
                match id.Ident.name with
                | "r" -> Some (Value.Oidv rel)
                | "halt_ok" -> Some (Value.Halt true)
                | "halt_err" -> Some (Value.Halt false)
                | _ -> None
              in
              match v with
              | Some v -> Ident.Map.add id v env
              | None -> env)
            Ident.Map.empty frees
        in
        Eval.run_app ctx ~env term
      in
      match run a, run merged with
      | Eval.Done v1, Eval.Done v2 ->
        check tbool "same aggregate" true (Value.identical v1 v2);
        check tbool "expected id sum" true (Value.identical v1 (Value.Int 3))
      | o1, o2 ->
        Alcotest.failf "chained %a, merged %a" Eval.pp_outcome o1 Eval.pp_outcome o2)

let test_merge_project () =
  let proj body_field =
    Printf.sprintf
      "proc(x qce%d! qcc%d!) ([] x %d cont(v%d) (tuple v%d cont(t%d) (qcc%d! t%d)))"
      body_field body_field body_field body_field body_field body_field body_field body_field
  in
  let src =
    Printf.sprintf "(project %s r ce! cont(tmp) (project %s tmp ce! k!))" (proj 1) (proj 0)
  in
  let a = Sexp.parse_app src in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "projects fused" 1 (count_prim "project" a')

let test_constant_select () =
  (* σtrue fires when the temp is consumed read-only by a literal
     continuation *)
  let a =
    Sexp.parse_app "(select proc(x pce! pcc!) (pcc! true) r ce! cont(s) (count s k!))"
  in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "σtrue eliminated" 0 (count_prim "select" a');
  check tbool "relation passed through" true
    (Term.alpha_equal_by_name_app a' (Sexp.parse_app "(count r k!)"));
  (* ... but not when the temp escapes to an unknown continuation: the
     caller could mutate it through the alias *)
  let esc = Sexp.parse_app "(select proc(x pce! pcc!) (pcc! true) r ce! k!)" in
  let esc' = Rewrite.reduce_app ~rules:Qopt.static_rules esc in
  check tint "σtrue kept when the result escapes" 1 (count_prim "select" esc');
  (* ... and not when the temp is mutated: the insert must hit a copy
     (minimized differential-fuzzer counterexample) *)
  let mut =
    Sexp.parse_app
      "(select proc(x pce! pcc!) (pcc! true) r ce! cont(s) (tuple 0 cont(t) (insert s t \
       ce! cont(u) (k! 0))))"
  in
  let mut' = Rewrite.reduce_app ~rules:Qopt.static_rules mut in
  check tint "σtrue kept when the result is mutated" 1 (count_prim "select" mut');
  let a2 = Sexp.parse_app "(select proc(x pce! pcc!) (pcc! false) r ce! k!)" in
  let a2' = Rewrite.reduce_app ~rules:Qopt.static_rules a2 in
  check tbool "σfalse becomes empty relation" true
    (Term.alpha_equal_by_name_app a2' (Sexp.parse_app "(relation k!)"))

let test_trivial_exists () =
  (* x unused and pure predicate: rewrite applies *)
  let a =
    Sexp.parse_app
      "(exists proc(x pce! pcc!) (> y 0 cont() (pcc! true) cont() (pcc! false)) r ce! k!)"
  in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "exists eliminated" 0 (count_prim "exists" a');
  check tint "empty introduced" 1 (count_prim "empty" a');
  (* x used: precondition |p|_x = 0 fails *)
  let a2 =
    Sexp.parse_app
      "(exists proc(x pce! pcc!) ([] x 0 cont(t) (> t 0 cont() (pcc! true) cont() (pcc! \
       false))) r ce! k!)"
  in
  let a2' = Rewrite.reduce_app ~rules:Qopt.static_rules a2 in
  check tint "exists kept when x occurs" 1 (count_prim "exists" a2');
  (* impure predicate (unknown call): purity guard blocks *)
  let a3 =
    Sexp.parse_app
      "(exists proc(x pce! pcc!) (somefn 1 pce! cont(t) (pcc! t)) r ce! k!)"
  in
  let a3' = Rewrite.reduce_app ~rules:Qopt.static_rules a3 in
  check tint "exists kept for impure predicate" 1 (count_prim "exists" a3')

let test_trivial_exists_semantics () =
  with_employees (fun ctx rel ->
      let src =
        "(exists proc(x pce! pcc!) (> y 0 cont() (pcc! true) cont() (pcc! false)) r \
         halt_err! cont(b) (halt_ok! b))"
      in
      let a = Sexp.parse_app src in
      let rewritten = Rewrite.reduce_app ~rules:Qopt.static_rules a in
      let run term y =
        let frees = Ident.Set.elements (Term.free_vars_app term) in
        let env =
          List.fold_left
            (fun env id ->
              let v =
                match id.Ident.name with
                | "r" -> Some (Value.Oidv rel)
                | "y" -> Some (Value.Int y)
                | "halt_ok" -> Some (Value.Halt true)
                | "halt_err" -> Some (Value.Halt false)
                | _ -> None
              in
              match v with
              | Some v -> Ident.Map.add id v env
              | None -> env)
            Ident.Map.empty frees
        in
        Eval.run_app ctx ~env term
      in
      List.iter
        (fun y ->
          match run a y, run rewritten y with
          | Eval.Done v1, Eval.Done v2 ->
            check tbool (Printf.sprintf "same result for y=%d" y) true (Value.identical v1 v2)
          | o1, o2 ->
            Alcotest.failf "original %a, rewritten %a" Eval.pp_outcome o1 Eval.pp_outcome o2)
        [ -1; 1 ])

let test_select_union_rule () =
  let src =
    Printf.sprintf "(union r1 r2 cont(t) (select %s t ce! k!))"
      (field_pred ~field:0 ~value:1)
  in
  let a = Sexp.parse_app src in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "selection distributed over union" 2 (count_prim "select" a');
  (* behaviour preserved *)
  let ctx = fresh_ctx () in
  let r1 = Rel.create ctx ~name:"a" [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 1 |]; [| Value.Int 3 |] ] in
  let wrap term =
    let frees = Ident.Set.elements (Term.free_vars_app term) in
    let env =
      List.fold_left
        (fun env id ->
          let v =
            match id.Ident.name with
            | "r1" -> Some (Value.Oidv r1)
            | "r2" -> Some (Value.Oidv r2)
            | "k" -> Some (Value.Halt true)
            | "ce" -> Some (Value.Halt false)
            | _ -> None
          in
          match v with
          | Some v -> Ident.Map.add id v env
          | None -> env)
        Ident.Map.empty frees
    in
    match Eval.run_app ctx ~env term with
    | Eval.Done (Value.Oidv rel) -> Array.length (Rel.rows ctx rel)
    | o -> Alcotest.failf "select-union run: %a" Eval.pp_outcome o
  in
  check tint "same cardinality" (wrap a) (wrap a')

let test_distinct_rules () =
  (* δ∘δ collapses *)
  let a = Sexp.parse_app "(distinct r cont(t) (distinct t k!))" in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "idempotent distinct" 1 (count_prim "distinct" a');
  (* δ(σp(R)): select first for row-local predicates *)
  let src =
    Printf.sprintf "(distinct r cont(t) (select %s t ce! k!))" (field_pred ~field:0 ~value:1)
  in
  let b = Sexp.parse_app src in
  let b' = Rewrite.reduce_app ~rules:Qopt.static_rules b in
  (match b'.Term.func with
  | Term.Prim "select" -> ()
  | _ -> Alcotest.fail "select should come first after the rewrite");
  (* an identity-observing predicate blocks the swap: x escapes into a
     continuation argument position other than a field read *)
  let c =
    Sexp.parse_app
      "(distinct r cont(t) (select proc(x pce! pcc!) (== x probe cont() (pcc! true) cont() \
       (pcc! false)) t ce! k!))"
  in
  let c' = Rewrite.reduce_app ~rules:Qopt.static_rules c in
  match c'.Term.func with
  | Term.Prim "distinct" -> ()
  | _ -> Alcotest.fail "identity-observing predicate must block the swap"

(* ------------------------------------------------------------------ *)
(* Runtime (store-dependent) rules                                      *)
(* ------------------------------------------------------------------ *)

let test_field_eq_recognition () =
  let pred = Sexp.parse_value (field_pred ~field:1 ~value:38) in
  (match Qrewrite.field_eq_predicate pred with
  | Some (1, Literal.Int 38) -> ()
  | _ -> Alcotest.fail "field-equality predicate not recognized");
  (* a > predicate is not an equality *)
  let pred2 =
    Sexp.parse_value
      "proc(x pce! pcc!) ([] x 1 cont(t) (> t 38 cont() (pcc! true) cont() (pcc! false)))"
  in
  check tbool "non-equality rejected" true (Qrewrite.field_eq_predicate pred2 = None)

let test_index_select_runtime () =
  with_employees (fun ctx rel ->
      let src =
        Printf.sprintf "(select %s <oid %d> ce! k!)" (field_pred ~field:1 ~value:38)
          (Oid.to_int rel)
      in
      let a = Sexp.parse_app src in
      (* without an index: no rewrite *)
      let a_no = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) a in
      check tint "no index, no rewrite" 1 (count_prim "select" a_no);
      (* with the index: select becomes indexselect *)
      Rel.add_index ctx rel 1;
      let a_yes = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) a in
      check tint "indexselect introduced" 1 (count_prim "indexselect" a_yes);
      check tint "select eliminated" 0 (count_prim "select" a_yes))

let () =
  Alcotest.run "tml_query"
    [
      ( "rel",
        [
          Alcotest.test_case "basics" `Quick test_rel_basics;
          Alcotest.test_case "indexes" `Quick test_rel_index;
        ] );
      ( "prims",
        [
          Alcotest.test_case "select and count" `Quick test_prim_select_count;
          Alcotest.test_case "row identity preserved" `Quick test_prim_select_preserves_identity;
          Alcotest.test_case "project" `Quick test_prim_project;
          Alcotest.test_case "join" `Quick test_prim_join;
          Alcotest.test_case "exists, empty, sum" `Quick test_prim_exists_empty_sum;
          Alcotest.test_case "predicate exceptions propagate" `Quick
            test_prim_exceptions_propagate;
          Alcotest.test_case "indexselect" `Quick test_prim_indexselect;
          Alcotest.test_case "union, inter, diff, distinct" `Quick test_prim_set_ops;
          Alcotest.test_case "aggregates" `Quick test_prim_aggregates;
          Alcotest.test_case "triggers" `Quick test_triggers;
        ] );
      ( "rewrites",
        [
          Alcotest.test_case "merge-select applies" `Quick test_merge_select_applies;
          Alcotest.test_case "merge-select preconditions" `Quick
            test_merge_select_preconditions;
          Alcotest.test_case "merge-select semantics" `Quick test_merge_select_semantics;
          Alcotest.test_case "merge-project" `Quick test_merge_project;
          Alcotest.test_case "constant selections" `Quick test_constant_select;
          Alcotest.test_case "trivial-exists" `Quick test_trivial_exists;
          Alcotest.test_case "trivial-exists semantics" `Quick test_trivial_exists_semantics;
          Alcotest.test_case "select over union" `Quick test_select_union_rule;
          Alcotest.test_case "distinct rules" `Quick test_distinct_rules;
        ] );
      ( "runtime-rules",
        [
          Alcotest.test_case "field equality recognition" `Quick test_field_eq_recognition;
          Alcotest.test_case "index-select needs the runtime binding" `Quick
            test_index_select_runtime;
        ] );
    ]
