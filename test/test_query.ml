(* Tests for the query substrate: relations, query primitives, and the
   algebraic / runtime rewrite rules of section 4.2. *)

open Tml_core
open Tml_vm
open Tml_query

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let fresh_ctx () =
  Qprims.install ();
  Runtime.create (Value.Heap.create ())

let employee_rows =
  [
    [| Value.Int 1; Value.Int 23; Value.Int 4100 |];
    [| Value.Int 2; Value.Int 38; Value.Int 6500 |];
    [| Value.Int 3; Value.Int 38; Value.Int 5200 |];
    [| Value.Int 4; Value.Int 55; Value.Int 8000 |];
    [| Value.Int 5; Value.Int 29; Value.Int 4600 |];
  ]

let with_employees f =
  let ctx = fresh_ctx () in
  let rel = Rel.create ctx ~name:"employees" employee_rows in
  f ctx rel

(* Run a TML application whose free identifiers are bound by [bindings]. *)
let run_tml ctx bindings src =
  let a = Sexp.parse_app src in
  let frees = Ident.Set.elements (Term.free_vars_app a) in
  let env =
    List.fold_left
      (fun env id ->
        match List.assoc_opt id.Ident.name bindings with
        | Some v -> Ident.Map.add id v env
        | None -> env)
      Ident.Map.empty frees
  in
  let env =
    List.fold_left
      (fun env id ->
        match id.Ident.name with
        | "halt_ok" -> Ident.Map.add id (Value.Halt true) env
        | "halt_err" -> Ident.Map.add id (Value.Halt false) env
        | _ -> env)
      env frees
  in
  Eval.run_app ctx ~env a

(* ------------------------------------------------------------------ *)
(* Rel                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rel_basics () =
  with_employees (fun ctx rel ->
      check tint "five rows" 5 (Array.length (Rel.rows ctx rel));
      let row0 = (Rel.rows ctx rel).(0) in
      let fields = Rel.row_tuple ctx row0 in
      check tbool "field access" true (Value.identical fields.(2) (Value.Int 4100));
      Rel.insert ctx rel [| Value.Int 6; Value.Int 41; Value.Int 7000 |];
      check tint "after insert" 6 (Array.length (Rel.rows ctx rel)))

let test_rel_paging () =
  let saved = !Relcore.default_page_size in
  Relcore.default_page_size := 4;
  Fun.protect
    ~finally:(fun () -> Relcore.default_page_size := saved)
    (fun () ->
      let ctx = fresh_ctx () in
      let rel =
        Rel.create ctx ~name:"big" (List.init 22 (fun i -> [| Value.Int i; Value.Int (i * i) |]))
      in
      let r = Rel.get ctx rel in
      check tint "22 rows" 22 (Rel.length ctx rel);
      check tint "five sealed pages" 5 (Relcore.page_count r);
      check tint "two tail rows" 2 r.Value.rel_tail_len;
      (* nth spans pages and tail *)
      List.iter
        (fun i ->
          let fields = Rel.row_tuple ctx (Rel.nth ctx rel i) in
          check tbool (Printf.sprintf "row %d content" i) true
            (Value.identical fields.(1) (Value.Int (i * i))))
        [ 0; 3; 4; 19; 20; 21 ];
      (* iteri covers every row exactly once, in order *)
      let seen = ref [] in
      Rel.iteri ctx rel (fun i row ->
          let fields = Rel.row_tuple ctx row in
          check tbool "iteri order" true (Value.identical fields.(0) (Value.Int i));
          seen := i :: !seen);
      check tint "iteri count" 22 (List.length !seen);
      (* inserts seal full tails into fresh pages *)
      for i = 22 to 27 do
        Rel.insert ctx rel [| Value.Int i; Value.Int (i * i) |]
      done;
      let r = Rel.get ctx rel in
      check tint "28 rows after inserts" 28 (Rel.length ctx rel);
      check tint "seven sealed pages" 7 (Relcore.page_count r);
      check tint "empty tail" 0 r.Value.rel_tail_len;
      let fields = Rel.row_tuple ctx (Rel.nth ctx rel 27) in
      check tbool "inserted row content" true (Value.identical fields.(1) (Value.Int (27 * 27))))

let test_rel_stats () =
  with_employees (fun ctx rel ->
      (match Rel.stats ctx rel with
      | Some st ->
        check tint "count" 5 st.Value.st_count;
        check tint "arity" 3 st.Value.st_arity;
        check tbool "no distinct sketch yet" true (st.Value.st_distinct = [])
      | None -> Alcotest.fail "stats object missing at creation");
      Rel.add_index ctx rel 1;
      (match Rel.stats ctx rel with
      | Some st -> check tbool "distinct tracked for indexed field" true
          (List.assoc_opt 1 st.Value.st_distinct = Some 4)
      | None -> Alcotest.fail "stats lost by mkindex");
      Rel.insert ctx rel [| Value.Int 6; Value.Int 77; Value.Int 100 |];
      match Rel.stats ctx rel with
      | Some st ->
        check tint "count maintained" 6 st.Value.st_count;
        check tbool "distinct maintained" true (List.assoc_opt 1 st.Value.st_distinct = Some 5)
      | None -> Alcotest.fail "stats lost by insert")

let test_rel_index () =
  with_employees (fun ctx rel ->
      check tbool "no index yet" true (Rel.find_index ctx rel 1 = None);
      Rel.add_index ctx rel 1;
      (match Rel.lookup ctx rel ~field:1 (Literal.Int 38) with
      | Some positions -> check tint "two aged 38" 2 (List.length positions)
      | None -> Alcotest.fail "index missing");
      (* inserts maintain the index *)
      Rel.insert ctx rel [| Value.Int 6; Value.Int 38; Value.Int 100 |];
      match Rel.lookup ctx rel ~field:1 (Literal.Int 38) with
      | Some positions -> check tint "three after insert" 3 (List.length positions)
      | None -> Alcotest.fail "index missing after insert")

(* ------------------------------------------------------------------ *)
(* Query primitives (through the evaluator)                             *)
(* ------------------------------------------------------------------ *)

let test_prim_select_count () =
  with_employees (fun ctx rel ->
      let outcome =
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(select proc(x pce! pcc!) ([] x 1 cont(age) (>= age 38 cont() (pcc! true) cont() \
           (pcc! false))) r halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
      in
      match outcome with
      | Eval.Done (Value.Int n) -> check tint "three at least 38" 3 n
      | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o)

let test_prim_select_preserves_identity () =
  with_employees (fun ctx rel ->
      let outcome =
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(select proc(x pce! pcc!) (pcc! true) r halt_err! cont(out) ([] out 0 cont(row) \
           (halt_ok! row)))"
      in
      ignore outcome;
      (* row identity: the selected relation contains the same tuple oids *)
      let orig_first = (Rel.rows ctx rel).(0) in
      match outcome with
      | Eval.Done v -> check tbool "same row oid" true (Value.identical v orig_first)
      | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o)

let test_prim_project () =
  with_employees (fun ctx rel ->
      let outcome =
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(project proc(x pce! pcc!) ([] x 2 cont(sal) (tuple sal cont(t) (pcc! t))) r \
           halt_err! cont(out) ([] out 3 cont(row) ([] row 0 cont(s) (halt_ok! s))))"
      in
      match outcome with
      | Eval.Done (Value.Int 8000) -> ()
      | o -> Alcotest.failf "unexpected: %a" Eval.pp_outcome o)

let test_prim_join () =
  let ctx = fresh_ctx () in
  let r1 = Rel.create ctx ~name:"a" [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 2 |]; [| Value.Int 3 |] ] in
  let outcome =
    run_tml ctx
      [ "r1", Value.Oidv r1; "r2", Value.Oidv r2 ]
      "(join proc(x y pce! pcc!) ([] x 0 cont(a) ([] y 0 cont(b) (== a b cont() (pcc! true) \
       cont() (pcc! false)))) r1 r2 halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
  in
  match outcome with
  | Eval.Done (Value.Int 1) -> ()
  | o -> Alcotest.failf "join: %a" Eval.pp_outcome o

let test_prim_exists_empty_sum () =
  with_employees (fun ctx rel ->
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           "(exists proc(x pce! pcc!) ([] x 1 cont(a) (> a 50 cont() (pcc! true) cont() \
            (pcc! false))) r halt_err! cont(b) (halt_ok! b))"
       with
      | Eval.Done (Value.Bool true) -> ()
      | o -> Alcotest.failf "exists: %a" Eval.pp_outcome o);
      (match
         run_tml ctx [ "r", Value.Oidv rel ] "(empty r cont(b) (halt_ok! b))"
       with
      | Eval.Done (Value.Bool false) -> ()
      | o -> Alcotest.failf "empty: %a" Eval.pp_outcome o);
      match
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(sum proc(x pce! pcc!) ([] x 2 pcc!) r halt_err! cont(s) (halt_ok! s))"
      with
      | Eval.Done (Value.Int 28400) -> ()
      | o -> Alcotest.failf "sum: %a" Eval.pp_outcome o)

let test_prim_exceptions_propagate () =
  with_employees (fun ctx rel ->
      match
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(select proc(x pce! pcc!) (pce! \"pred failed\") r halt_err! cont(out) (halt_ok! \
           out))"
      with
      | Eval.Raised (Value.Str "pred failed") -> ()
      | o -> Alcotest.failf "expected Raised, got %a" Eval.pp_outcome o)

let test_prim_indexselect () =
  with_employees (fun ctx rel ->
      Rel.add_index ctx rel 1;
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           "(indexselect r 1 38 halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
       with
      | Eval.Done (Value.Int 2) -> ()
      | o -> Alcotest.failf "indexselect: %a" Eval.pp_outcome o);
      (* without an index it degrades to a scan with identical results *)
      match
        run_tml ctx
          [ "r", Value.Oidv rel ]
          "(indexselect r 2 8000 halt_err! cont(out) (count out cont(n) (halt_ok! n)))"
      with
      | Eval.Done (Value.Int 1) -> ()
      | o -> Alcotest.failf "indexselect scan: %a" Eval.pp_outcome o)

let test_prim_set_ops () =
  let ctx = fresh_ctx () in
  let r1 =
    Rel.create ctx ~name:"a" [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 2 |] ]
  in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 2 |]; [| Value.Int 3 |] ] in
  let bindings = [ "r1", Value.Oidv r1; "r2", Value.Oidv r2 ] in
  let count_of src =
    match run_tml ctx bindings src with
    | Eval.Done (Value.Int n) -> n
    | o -> Alcotest.failf "%s: %a" src Eval.pp_outcome o
  in
  check tint "union is multiset" 5 (count_of "(union r1 r2 cont(u) (count u cont(n) (halt_ok! n)))");
  check tint "inter by content" 2
    (count_of "(inter r1 r2 cont(u) (count u cont(n) (halt_ok! n)))");
  check tint "diff by content" 1
    (count_of "(diff r1 r2 cont(u) (count u cont(n) (halt_ok! n)))");
  check tint "distinct" 2 (count_of "(distinct r1 cont(u) (count u cont(n) (halt_ok! n)))")

let test_triggers () =
  let ctx = fresh_ctx () in
  let log = Rel.create ctx ~name:"audit" [] in
  let data = Rel.create ctx ~name:"data" [] in
  (* the trigger copies every inserted tuple's first field into the audit
     relation, doubled *)
  let trigger_src =
    Printf.sprintf
      "proc(row tce! tcc!) ([] row 0 cont(v) (+ v v tce! cont(d) (tuple d cont(t) (insert \
       <oid %d> t tce! tcc!))))"
      (Oid.to_int log)
  in
  let trigger = Sexp.parse_value trigger_src in
  let heap = ctx.Runtime.heap in
  let trigger_oid = Value.Heap.alloc_func heap ~name:"audit_trigger" trigger in
  let bindings = [ "r", Value.Oidv data ] in
  (match
     run_tml ctx bindings
       (Printf.sprintf "(ontrigger r <oid %d> cont(u) (halt_ok! u))" (Oid.to_int trigger_oid))
   with
  | Eval.Done Value.Unit -> ()
  | o -> Alcotest.failf "ontrigger: %a" Eval.pp_outcome o);
  (match
     run_tml ctx bindings
       "(tuple 21 cont(t) (insert r t halt_err! cont(u) (halt_ok! u)))"
   with
  | Eval.Done Value.Unit -> ()
  | o -> Alcotest.failf "insert with trigger: %a" Eval.pp_outcome o);
  check tint "row inserted" 1 (Array.length (Rel.rows ctx data));
  check tint "trigger fired into audit" 1 (Array.length (Rel.rows ctx log));
  let audit_row = Rel.row_tuple ctx (Rel.rows ctx log).(0) in
  check tbool "trigger saw the tuple" true (Value.identical audit_row.(0) (Value.Int 42));
  (* a raising trigger propagates through the exception continuation; the
     row stays inserted (triggers run after the update) *)
  let bad = Sexp.parse_value "proc(row tce! tcc!) (tce! \"trigger says no\")" in
  let bad_oid = Value.Heap.alloc_func heap ~name:"bad_trigger" bad in
  (match
     run_tml ctx bindings
       (Printf.sprintf "(ontrigger r <oid %d> cont(u) (halt_ok! u))" (Oid.to_int bad_oid))
   with
  | Eval.Done Value.Unit -> ()
  | o -> Alcotest.failf "ontrigger 2: %a" Eval.pp_outcome o);
  (match
     run_tml ctx bindings
       "(tuple 5 cont(t) (insert r t halt_err! cont(u) (halt_ok! u)))"
   with
  | Eval.Raised (Value.Str "trigger says no") -> ()
  | o -> Alcotest.failf "raising trigger: %a" Eval.pp_outcome o);
  check tint "row still inserted" 2 (Array.length (Rel.rows ctx data))

let test_prim_aggregates () =
  with_employees (fun ctx rel ->
      let salary = "proc(x ace! acc!) ([] x 2 acc!)" in
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           (Printf.sprintf "(minagg %s r halt_err! cont(m) (halt_ok! m))" salary)
       with
      | Eval.Done (Value.Int 4100) -> ()
      | o -> Alcotest.failf "minagg: %a" Eval.pp_outcome o);
      (match
         run_tml ctx
           [ "r", Value.Oidv rel ]
           (Printf.sprintf "(maxagg %s r halt_err! cont(m) (halt_ok! m))" salary)
       with
      | Eval.Done (Value.Int 8000) -> ()
      | o -> Alcotest.failf "maxagg: %a" Eval.pp_outcome o);
      (* empty relation raises *)
      let empty_rel = Rel.create ctx ~name:"none" [] in
      match
        run_tml ctx
          [ "r", Value.Oidv empty_rel ]
          (Printf.sprintf "(minagg %s r halt_err! cont(m) (halt_ok! m))" salary)
      with
      | Eval.Raised _ -> ()
      | o -> Alcotest.failf "minagg on empty: %a" Eval.pp_outcome o)

(* ------------------------------------------------------------------ *)
(* Algebraic rewrite rules                                              *)
(* ------------------------------------------------------------------ *)

let count_prim name a =
  let n = ref 0 in
  Term.iter_apps
    (fun node ->
      match node.Term.func with
      | Term.Prim p when p = name -> incr n
      | _ -> ())
    a;
  !n

let field_pred ~field ~value =
  Printf.sprintf
    "proc(x pce%d! pcc%d!) ([] x %d cont(t%d) (== t%d %d cont() (pcc%d! true) cont() (pcc%d! \
     false)))"
    field field field field field value field field

let test_merge_select_applies () =
  let src =
    Printf.sprintf
      "(select %s r ce! cont(tmp) (select %s tmp ce! k!))"
      (field_pred ~field:0 ~value:1)
      (field_pred ~field:1 ~value:2)
  in
  let a = Sexp.parse_app src in
  check tint "two selects before" 2 (count_prim "select" a);
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "one select after" 1 (count_prim "select" a')

let test_merge_select_preconditions () =
  (* different exception continuations block the merge *)
  let src =
    Printf.sprintf "(select %s r ce1! cont(tmp) (select %s tmp ce2! k!))"
      (field_pred ~field:0 ~value:1)
      (field_pred ~field:1 ~value:2)
  in
  let a = Sexp.parse_app src in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "merge blocked by differing ce" 2 (count_prim "select" a');
  (* intermediate relation used twice blocks the merge *)
  let src2 =
    Printf.sprintf "(select %s r ce! cont(tmp) (select %s tmp ce! cont(out) (join jp tmp out \
     ce! k!)))"
      (field_pred ~field:0 ~value:1)
      (field_pred ~field:1 ~value:2)
  in
  let a2 = Sexp.parse_app src2 in
  let a2' = Rewrite.reduce_app ~rules:Qopt.static_rules a2 in
  check tint "merge blocked by shared intermediate" 2 (count_prim "select" a2')

let test_merge_select_semantics () =
  (* chained and merged runs produce the same rows *)
  with_employees (fun ctx rel ->
      let chained_src =
        Printf.sprintf
          "(select %s r halt_err! cont(tmp) (select %s tmp halt_err! cont(out) (sum \
           proc(x spce! spcc!) ([] x 0 spcc!) out halt_err! cont(s) (halt_ok! s))))"
          (field_pred ~field:1 ~value:38)
          (field_pred ~field:2 ~value:5200)
      in
      let a = Sexp.parse_app chained_src in
      let merged = Rewrite.reduce_app ~rules:Qopt.static_rules a in
      let run term =
        let frees = Ident.Set.elements (Term.free_vars_app term) in
        let env =
          List.fold_left
            (fun env id ->
              let v =
                match id.Ident.name with
                | "r" -> Some (Value.Oidv rel)
                | "halt_ok" -> Some (Value.Halt true)
                | "halt_err" -> Some (Value.Halt false)
                | _ -> None
              in
              match v with
              | Some v -> Ident.Map.add id v env
              | None -> env)
            Ident.Map.empty frees
        in
        Eval.run_app ctx ~env term
      in
      match run a, run merged with
      | Eval.Done v1, Eval.Done v2 ->
        check tbool "same aggregate" true (Value.identical v1 v2);
        check tbool "expected id sum" true (Value.identical v1 (Value.Int 3))
      | o1, o2 ->
        Alcotest.failf "chained %a, merged %a" Eval.pp_outcome o1 Eval.pp_outcome o2)

let test_merge_project () =
  let proj body_field =
    Printf.sprintf
      "proc(x qce%d! qcc%d!) ([] x %d cont(v%d) (tuple v%d cont(t%d) (qcc%d! t%d)))"
      body_field body_field body_field body_field body_field body_field body_field body_field
  in
  let src =
    Printf.sprintf "(project %s r ce! cont(tmp) (project %s tmp ce! k!))" (proj 1) (proj 0)
  in
  let a = Sexp.parse_app src in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "projects fused" 1 (count_prim "project" a')

let test_constant_select () =
  (* σtrue fires when the temp is consumed read-only by a literal
     continuation *)
  let a =
    Sexp.parse_app "(select proc(x pce! pcc!) (pcc! true) r ce! cont(s) (count s k!))"
  in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "σtrue eliminated" 0 (count_prim "select" a');
  check tbool "relation passed through" true
    (Term.alpha_equal_by_name_app a' (Sexp.parse_app "(count r k!)"));
  (* ... but not when the temp escapes to an unknown continuation: the
     caller could mutate it through the alias *)
  let esc = Sexp.parse_app "(select proc(x pce! pcc!) (pcc! true) r ce! k!)" in
  let esc' = Rewrite.reduce_app ~rules:Qopt.static_rules esc in
  check tint "σtrue kept when the result escapes" 1 (count_prim "select" esc');
  (* ... and not when the temp is mutated: the insert must hit a copy
     (minimized differential-fuzzer counterexample) *)
  let mut =
    Sexp.parse_app
      "(select proc(x pce! pcc!) (pcc! true) r ce! cont(s) (tuple 0 cont(t) (insert s t \
       ce! cont(u) (k! 0))))"
  in
  let mut' = Rewrite.reduce_app ~rules:Qopt.static_rules mut in
  check tint "σtrue kept when the result is mutated" 1 (count_prim "select" mut');
  let a2 = Sexp.parse_app "(select proc(x pce! pcc!) (pcc! false) r ce! k!)" in
  let a2' = Rewrite.reduce_app ~rules:Qopt.static_rules a2 in
  check tbool "σfalse becomes empty relation" true
    (Term.alpha_equal_by_name_app a2' (Sexp.parse_app "(relation k!)"))

let test_trivial_exists () =
  (* x unused and pure predicate: rewrite applies *)
  let a =
    Sexp.parse_app
      "(exists proc(x pce! pcc!) (> y 0 cont() (pcc! true) cont() (pcc! false)) r ce! k!)"
  in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "exists eliminated" 0 (count_prim "exists" a');
  check tint "empty introduced" 1 (count_prim "empty" a');
  (* x used: precondition |p|_x = 0 fails *)
  let a2 =
    Sexp.parse_app
      "(exists proc(x pce! pcc!) ([] x 0 cont(t) (> t 0 cont() (pcc! true) cont() (pcc! \
       false))) r ce! k!)"
  in
  let a2' = Rewrite.reduce_app ~rules:Qopt.static_rules a2 in
  check tint "exists kept when x occurs" 1 (count_prim "exists" a2');
  (* impure predicate (unknown call): purity guard blocks *)
  let a3 =
    Sexp.parse_app
      "(exists proc(x pce! pcc!) (somefn 1 pce! cont(t) (pcc! t)) r ce! k!)"
  in
  let a3' = Rewrite.reduce_app ~rules:Qopt.static_rules a3 in
  check tint "exists kept for impure predicate" 1 (count_prim "exists" a3')

let test_trivial_exists_semantics () =
  with_employees (fun ctx rel ->
      let src =
        "(exists proc(x pce! pcc!) (> y 0 cont() (pcc! true) cont() (pcc! false)) r \
         halt_err! cont(b) (halt_ok! b))"
      in
      let a = Sexp.parse_app src in
      let rewritten = Rewrite.reduce_app ~rules:Qopt.static_rules a in
      let run term y =
        let frees = Ident.Set.elements (Term.free_vars_app term) in
        let env =
          List.fold_left
            (fun env id ->
              let v =
                match id.Ident.name with
                | "r" -> Some (Value.Oidv rel)
                | "y" -> Some (Value.Int y)
                | "halt_ok" -> Some (Value.Halt true)
                | "halt_err" -> Some (Value.Halt false)
                | _ -> None
              in
              match v with
              | Some v -> Ident.Map.add id v env
              | None -> env)
            Ident.Map.empty frees
        in
        Eval.run_app ctx ~env term
      in
      List.iter
        (fun y ->
          match run a y, run rewritten y with
          | Eval.Done v1, Eval.Done v2 ->
            check tbool (Printf.sprintf "same result for y=%d" y) true (Value.identical v1 v2)
          | o1, o2 ->
            Alcotest.failf "original %a, rewritten %a" Eval.pp_outcome o1 Eval.pp_outcome o2)
        [ -1; 1 ])

let test_select_union_rule () =
  let src =
    Printf.sprintf "(union r1 r2 cont(t) (select %s t ce! k!))"
      (field_pred ~field:0 ~value:1)
  in
  let a = Sexp.parse_app src in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "selection distributed over union" 2 (count_prim "select" a');
  (* behaviour preserved *)
  let ctx = fresh_ctx () in
  let r1 = Rel.create ctx ~name:"a" [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 1 |]; [| Value.Int 3 |] ] in
  let wrap term =
    let frees = Ident.Set.elements (Term.free_vars_app term) in
    let env =
      List.fold_left
        (fun env id ->
          let v =
            match id.Ident.name with
            | "r1" -> Some (Value.Oidv r1)
            | "r2" -> Some (Value.Oidv r2)
            | "k" -> Some (Value.Halt true)
            | "ce" -> Some (Value.Halt false)
            | _ -> None
          in
          match v with
          | Some v -> Ident.Map.add id v env
          | None -> env)
        Ident.Map.empty frees
    in
    match Eval.run_app ctx ~env term with
    | Eval.Done (Value.Oidv rel) -> Array.length (Rel.rows ctx rel)
    | o -> Alcotest.failf "select-union run: %a" Eval.pp_outcome o
  in
  check tint "same cardinality" (wrap a) (wrap a')

let test_distinct_rules () =
  (* δ∘δ collapses *)
  let a = Sexp.parse_app "(distinct r cont(t) (distinct t k!))" in
  let a' = Rewrite.reduce_app ~rules:Qopt.static_rules a in
  check tint "idempotent distinct" 1 (count_prim "distinct" a');
  (* δ(σp(R)): select first for row-local predicates *)
  let src =
    Printf.sprintf "(distinct r cont(t) (select %s t ce! k!))" (field_pred ~field:0 ~value:1)
  in
  let b = Sexp.parse_app src in
  let b' = Rewrite.reduce_app ~rules:Qopt.static_rules b in
  (match b'.Term.func with
  | Term.Prim "select" -> ()
  | _ -> Alcotest.fail "select should come first after the rewrite");
  (* an identity-observing predicate blocks the swap: x escapes into a
     continuation argument position other than a field read *)
  let c =
    Sexp.parse_app
      "(distinct r cont(t) (select proc(x pce! pcc!) (== x probe cont() (pcc! true) cont() \
       (pcc! false)) t ce! k!))"
  in
  let c' = Rewrite.reduce_app ~rules:Qopt.static_rules c in
  match c'.Term.func with
  | Term.Prim "distinct" -> ()
  | _ -> Alcotest.fail "identity-observing predicate must block the swap"

(* ------------------------------------------------------------------ *)
(* Runtime (store-dependent) rules                                      *)
(* ------------------------------------------------------------------ *)

let test_field_eq_recognition () =
  let pred = Sexp.parse_value (field_pred ~field:1 ~value:38) in
  (match Qrewrite.field_eq_predicate pred with
  | Some (1, Literal.Int 38) -> ()
  | _ -> Alcotest.fail "field-equality predicate not recognized");
  (* a > predicate is not an equality *)
  let pred2 =
    Sexp.parse_value
      "proc(x pce! pcc!) ([] x 1 cont(t) (> t 38 cont() (pcc! true) cont() (pcc! false)))"
  in
  check tbool "non-equality rejected" true (Qrewrite.field_eq_predicate pred2 = None)

let test_index_select_runtime () =
  with_employees (fun ctx rel ->
      let src =
        Printf.sprintf "(select %s <oid %d> ce! k!)" (field_pred ~field:1 ~value:38)
          (Oid.to_int rel)
      in
      let a = Sexp.parse_app src in
      (* without an index: no rewrite *)
      let a_no = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) a in
      check tint "no index, no rewrite" 1 (count_prim "select" a_no);
      (* with the index: select becomes indexselect *)
      Rel.add_index ctx rel 1;
      let a_yes = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) a in
      check tint "indexselect introduced" 1 (count_prim "indexselect" a_yes);
      check tint "select eliminated" 0 (count_prim "select" a_yes))

let join_pred ~f1 ~f2 =
  Printf.sprintf
    "proc(x y jce! jcc!) ([] x %d cont(ja) ([] y %d cont(jb) (== ja jb cont() (jcc! true) \
     cont() (jcc! false))))"
    f1 f2

(* run a term whose result continuation k! receives a relation; return it *)
let run_to_rel ctx bindings src =
  match
    run_tml ctx (( "k", Value.Halt true) :: ("ce", Value.Halt false) :: bindings) src
  with
  | Eval.Done (Value.Oidv out) -> out
  | o -> Alcotest.failf "%s: %a" src Eval.pp_outcome o

let rows_equal ctx name r1 r2 =
  let a1 = Rel.rows ctx r1 and a2 = Rel.rows ctx r2 in
  check tint (name ^ ": cardinality") (Array.length a1) (Array.length a2);
  Array.iteri
    (fun i row1 ->
      let f1 = Rel.row_tuple ctx row1 and f2 = Rel.row_tuple ctx a2.(i) in
      check tint (Printf.sprintf "%s: row %d width" name i) (Array.length f1)
        (Array.length f2);
      Array.iteri
        (fun j v1 ->
          check tbool (Printf.sprintf "%s: row %d field %d" name i j) true
            (Value.identical v1 f2.(j)))
        f1)
    a1

let test_prim_idxjoin () =
  let ctx = fresh_ctx () in
  let r1 =
    Rel.create ctx ~name:"a"
      [ [| Value.Int 1; Value.Int 10 |]; [| Value.Int 2; Value.Int 20 |];
        [| Value.Int 2; Value.Int 21 |] ]
  in
  let r2 =
    Rel.create ctx ~name:"b"
      [ [| Value.Int 2; Value.Int 200 |]; [| Value.Int 3; Value.Int 300 |];
        [| Value.Int 2; Value.Int 201 |] ]
  in
  let bindings = [ "r1", Value.Oidv r1; "r2", Value.Oidv r2 ] in
  let naive_src =
    Printf.sprintf "(join %s r1 r2 ce! k!)" (join_pred ~f1:0 ~f2:0)
  in
  let naive = run_to_rel ctx bindings naive_src in
  (* degrade path: no index on r2.0 yet *)
  let degraded = run_to_rel ctx bindings "(idxjoin r1 r2 0 0 ce! k!)" in
  rows_equal ctx "idxjoin degrade ≡ join" naive degraded;
  (* indexed path: probes reproduce the nested loop, row order included *)
  Rel.add_index ctx r2 0;
  let probes0 = !Rel.index_probes in
  let indexed = run_to_rel ctx bindings "(idxjoin r1 r2 0 0 ce! k!)" in
  rows_equal ctx "idxjoin indexed ≡ join" naive indexed;
  check tbool "index was probed" true (!Rel.index_probes > probes0)

let test_join_field_eq_recognition () =
  (match Qrewrite.join_field_eq_predicate (Sexp.parse_value (join_pred ~f1:1 ~f2:0)) with
  | Some (1, 0) -> ()
  | _ -> Alcotest.fail "equi-join predicate not recognized");
  (* the builder produces exactly the recognized shape *)
  (match Qrewrite.join_field_eq_predicate (Qrewrite.mk_join_field_eq ~f1:2 ~f2:3) with
  | Some (2, 3) -> ()
  | _ -> Alcotest.fail "built predicate not recognized");
  (* a one-sided (select-style) predicate is not an equi-join *)
  check tbool "select predicate rejected" true
    (Qrewrite.join_field_eq_predicate (Sexp.parse_value (field_pred ~field:0 ~value:3)) = None)

let test_index_join_runtime () =
  let ctx = fresh_ctx () in
  let r1 = Rel.create ctx ~name:"a" [ [| Value.Int 1 |] ] in
  let r2 = Rel.create ctx ~name:"b" [ [| Value.Int 1 |] ] in
  ignore r1;
  let src =
    Printf.sprintf "(join %s r1 <oid %d> ce! k!)" (join_pred ~f1:0 ~f2:0) (Oid.to_int r2)
  in
  let a = Sexp.parse_app src in
  (* no index on the probed side: no rewrite *)
  let a_no = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) a in
  check tint "no index, join kept" 1 (count_prim "join" a_no);
  (* index on the probed field: join becomes idxjoin *)
  Rel.add_index ctx r2 0;
  let a_yes = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) a in
  check tint "idxjoin introduced" 1 (count_prim "idxjoin" a_yes);
  check tint "join eliminated" 0 (count_prim "join" a_yes)

(* A 3-relation chain where the statistics favour the right-deep order:
   A ⋈ B explodes (every key equal), B ⋈ C is selective (unique keys). *)
let mk_join_order_fixture ctx =
  let a =
    Rel.create ctx ~name:"A" (List.init 40 (fun i -> [| Value.Int 7; Value.Int i |]))
  in
  let b =
    Rel.create ctx ~name:"B" (List.init 10 (fun i -> [| Value.Int 7; Value.Int i |]))
  in
  let c =
    Rel.create ctx ~name:"C" (List.init 10 (fun i -> [| Value.Int i; Value.Int (1000 + i) |]))
  in
  Rel.add_index ctx b 0;
  Rel.add_index ctx b 1;
  Rel.add_index ctx c 0;
  a, b, c

let join_chain_src ~a ~b ~c =
  (* (A ⋈_{x.0 = y.0} B) ⋈_{t.3 = z.0} C; field 3 of t = A++B is B.1 *)
  Printf.sprintf "(join %s <oid %d> <oid %d> ce! cont(t) (join %s t <oid %d> ce! k!))"
    (join_pred ~f1:0 ~f2:0) (Oid.to_int a) (Oid.to_int b)
    (join_pred ~f1:3 ~f2:0) (Oid.to_int c)

let test_join_order_runtime () =
  let ctx = fresh_ctx () in
  let a, b, c = mk_join_order_fixture ctx in
  let term = Sexp.parse_app (join_chain_src ~a ~b ~c) in
  let planned = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) term in
  (* the chain reassociates: B ⋈ C runs first (as an idxjoin probe on
     C's index), A joins the small intermediate last *)
  check tint "idxjoin introduced by reorder" 1 (count_prim "idxjoin" planned);
  check tint "one join left" 1 (count_prim "join" planned);
  (match planned.Term.func, planned.Term.args with
  | Term.Prim "idxjoin", Term.Lit (Literal.Oid first) :: Term.Lit (Literal.Oid second) :: _
    ->
    check tbool "outer loop is B" true (Oid.equal first b);
    check tbool "probed side is C" true (Oid.equal second c)
  | _ -> Alcotest.fail "reordered plan does not start with idxjoin B C");
  (* semantics: planned and naive runs emit identical rows in identical
     order *)
  let run term =
    let frees = Ident.Set.elements (Term.free_vars_app term) in
    let env =
      List.fold_left
        (fun env id ->
          match id.Ident.name with
          | "k" -> Ident.Map.add id (Value.Halt true) env
          | "ce" -> Ident.Map.add id (Value.Halt false) env
          | _ -> env)
        Ident.Map.empty frees
    in
    match Eval.run_app ctx ~env term with
    | Eval.Done (Value.Oidv out) -> out
    | o -> Alcotest.failf "join chain: %a" Eval.pp_outcome o
  in
  let naive_out = run term and planned_out = run planned in
  check tint "400 result rows" 400 (Rel.length ctx naive_out);
  rows_equal ctx "planned ≡ naive" naive_out planned_out;
  (* without the enabling statistics (no indexes, distinct unknown) the
     cost model sees no advantage and leaves the order alone *)
  let ctx2 = fresh_ctx () in
  let a2 = Rel.create ctx2 ~name:"A" (List.init 4 (fun i -> [| Value.Int i; Value.Int i |])) in
  let b2 = Rel.create ctx2 ~name:"B" (List.init 4 (fun i -> [| Value.Int i; Value.Int i |])) in
  let c2 = Rel.create ctx2 ~name:"C" (List.init 4 (fun i -> [| Value.Int i; Value.Int i |])) in
  let term2 = Sexp.parse_app (join_chain_src ~a:a2 ~b:b2 ~c:c2) in
  let planned2 = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx2) term2 in
  check tint "no stats advantage, order kept" 2 (count_prim "join" planned2)

let test_query_metrics_source () =
  let ctx = fresh_ctx () in
  Qprims.reset_query_counters ();
  let rel = Rel.create ctx ~name:"m" [ [| Value.Int 1 |] ] in
  Rel.add_index ctx rel 0;
  ignore (Rel.lookup ctx rel ~field:0 (Literal.Int 1));
  let counters = Qprims.query_counters () in
  let get name = List.assoc name counters in
  check tint "relations_created" 1 (get "relations_created");
  check tint "index_builds" 1 (get "index_builds");
  check tbool "index_probes counted" true (get "index_probes" >= 1);
  check tbool "stats_updates counted" true (get "stats_updates" >= 1);
  (* registered in the metrics registry under the "query" source (what
     tmlsh :stats query prints) *)
  let json = Tml_obs.Metrics.snapshot_json () in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check tbool "query metrics source registered" true (contains ~sub:"\"query\"" json);
  check tbool "source exposes page-fault counter" true
    (contains ~sub:"page_faults" json)

(* ------------------------------------------------------------------ *)
(* Properties: rewritten access paths ≡ naive scans                     *)
(* ------------------------------------------------------------------ *)

let with_page_size n f =
  let saved = !Relcore.default_page_size in
  Relcore.default_page_size := n;
  Fun.protect ~finally:(fun () -> Relcore.default_page_size := saved) f

(* generated relations: up to 30 rows of width 2 over a small key space,
   page size 3 so cases span sealed pages and the growable tail *)
let gen_rows =
  QCheck2.Gen.(
    list_size (int_bound 30)
      (map2 (fun a b -> [| Value.Int a; Value.Int b |]) (int_bound 7) (int_bound 7)))

let prop_indexselect_equiv_scan =
  QCheck2.Test.make ~name:"indexselect ≡ scan-select (multi-page)" ~count:100
    QCheck2.Gen.(triple gen_rows (int_bound 1) (int_bound 7))
    (fun (rows, field, key) ->
      with_page_size 3 (fun () ->
          let ctx = fresh_ctx () in
          let rel = Rel.create ctx ~name:"p" rows in
          Rel.add_index ctx rel field;
          let bindings = [ "r", Value.Oidv rel ] in
          let scan =
            run_to_rel ctx bindings
              (Printf.sprintf "(select %s r ce! k!)" (field_pred ~field ~value:key))
          in
          let indexed =
            run_to_rel ctx bindings
              (Printf.sprintf "(indexselect r %d %d ce! k!)" field key)
          in
          let a1 = Rel.rows ctx scan and a2 = Rel.rows ctx indexed in
          Array.length a1 = Array.length a2
          && Array.for_all2 (fun x y -> Value.identical x y) a1 a2))

let prop_planned_join_equiv_naive =
  QCheck2.Test.make ~name:"planned join chain ≡ naive join chain" ~count:60
    QCheck2.Gen.(
      triple gen_rows gen_rows
        (triple gen_rows (int_bound 3) (int_bound 1)))
    (fun (rows_a, rows_b, (rows_c, ixmask, g_b)) ->
      with_page_size 3 (fun () ->
          let ctx = fresh_ctx () in
          let a = Rel.create ctx ~name:"A" rows_a in
          let b = Rel.create ctx ~name:"B" rows_b in
          let c = Rel.create ctx ~name:"C" rows_c in
          if ixmask land 1 <> 0 then Rel.add_index ctx b 0;
          if ixmask land 2 <> 0 then Rel.add_index ctx c 0;
          Rel.add_index ctx b (1 - g_b);
          (* inner predicate probes t.(2 + g) = B field g against C.0 *)
          let src =
            Printf.sprintf
              "(join %s <oid %d> <oid %d> ce! cont(t) (join %s t <oid %d> ce! k!))"
              (join_pred ~f1:0 ~f2:0) (Oid.to_int a) (Oid.to_int b)
              (join_pred ~f1:(2 + g_b) ~f2:0) (Oid.to_int c)
          in
          let term = Sexp.parse_app src in
          let planned = Rewrite.reduce_app ~rules:(Qopt.runtime_rules ctx) term in
          let run term =
            let frees = Ident.Set.elements (Term.free_vars_app term) in
            let env =
              List.fold_left
                (fun env id ->
                  match id.Ident.name with
                  | "k" -> Ident.Map.add id (Value.Halt true) env
                  | "ce" -> Ident.Map.add id (Value.Halt false) env
                  | _ -> env)
                Ident.Map.empty frees
            in
            match Eval.run_app ctx ~env term with
            | Eval.Done (Value.Oidv out) -> Some out
            | _ -> None
          in
          match run term, run planned with
          | Some naive, Some opt ->
            let a1 = Rel.rows ctx naive and a2 = Rel.rows ctx opt in
            Array.length a1 = Array.length a2
            && Array.for_all2
                 (fun x y ->
                   let f1 = Rel.row_tuple ctx x and f2 = Rel.row_tuple ctx y in
                   Array.length f1 = Array.length f2
                   && Array.for_all2 Value.identical f1 f2)
                 a1 a2
          | o1, o2 -> o1 = o2))

let () =
  Alcotest.run "tml_query"
    [
      ( "rel",
        [
          Alcotest.test_case "basics" `Quick test_rel_basics;
          Alcotest.test_case "paged segments" `Quick test_rel_paging;
          Alcotest.test_case "cardinality statistics" `Quick test_rel_stats;
          Alcotest.test_case "indexes" `Quick test_rel_index;
        ] );
      ( "prims",
        [
          Alcotest.test_case "select and count" `Quick test_prim_select_count;
          Alcotest.test_case "row identity preserved" `Quick test_prim_select_preserves_identity;
          Alcotest.test_case "project" `Quick test_prim_project;
          Alcotest.test_case "join" `Quick test_prim_join;
          Alcotest.test_case "exists, empty, sum" `Quick test_prim_exists_empty_sum;
          Alcotest.test_case "predicate exceptions propagate" `Quick
            test_prim_exceptions_propagate;
          Alcotest.test_case "indexselect" `Quick test_prim_indexselect;
          Alcotest.test_case "idxjoin" `Quick test_prim_idxjoin;
          Alcotest.test_case "union, inter, diff, distinct" `Quick test_prim_set_ops;
          Alcotest.test_case "aggregates" `Quick test_prim_aggregates;
          Alcotest.test_case "triggers" `Quick test_triggers;
        ] );
      ( "rewrites",
        [
          Alcotest.test_case "merge-select applies" `Quick test_merge_select_applies;
          Alcotest.test_case "merge-select preconditions" `Quick
            test_merge_select_preconditions;
          Alcotest.test_case "merge-select semantics" `Quick test_merge_select_semantics;
          Alcotest.test_case "merge-project" `Quick test_merge_project;
          Alcotest.test_case "constant selections" `Quick test_constant_select;
          Alcotest.test_case "trivial-exists" `Quick test_trivial_exists;
          Alcotest.test_case "trivial-exists semantics" `Quick test_trivial_exists_semantics;
          Alcotest.test_case "select over union" `Quick test_select_union_rule;
          Alcotest.test_case "distinct rules" `Quick test_distinct_rules;
        ] );
      ( "runtime-rules",
        [
          Alcotest.test_case "field equality recognition" `Quick test_field_eq_recognition;
          Alcotest.test_case "index-select needs the runtime binding" `Quick
            test_index_select_runtime;
          Alcotest.test_case "equi-join predicate recognition" `Quick
            test_join_field_eq_recognition;
          Alcotest.test_case "index-join needs the runtime binding" `Quick
            test_index_join_runtime;
          Alcotest.test_case "cost-based join order" `Quick test_join_order_runtime;
          Alcotest.test_case "query metrics source" `Quick test_query_metrics_source;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_indexselect_equiv_scan;
          QCheck_alcotest.to_alcotest prop_planned_join_equiv_naive;
        ] );
    ]
