(* Hardening and round-trip properties of the binary codec: LEB128
   varints must reject non-terminating and >63-bit sequences instead of
   silently wrapping, and every primitive encoder round-trips on its edge
   values. *)

module Codec = Tml_store.Codec

let check = Alcotest.check
let tint = Alcotest.int
let tstr = Alcotest.string

let encode f x =
  let w = Codec.W.create () in
  f w x;
  Codec.W.contents w

let decode f s = f (Codec.R.of_string s)

let expect_malformed what f s =
  match decode f s with
  | exception Codec.R.Malformed _ -> ()
  | v -> Alcotest.failf "%s: accepted as %d" what v

let expect_truncated what f s =
  match decode f s with
  | exception Codec.R.Truncated -> ()
  | v -> Alcotest.failf "%s: accepted as %d" what v

(* --- varint ------------------------------------------------------- *)

let test_varint_edges () =
  List.iter
    (fun v -> check tint (string_of_int v) v (decode Codec.R.varint (encode Codec.W.varint v)))
    [ 0; 1; 127; 128; 16383; 16384; max_int - 1; max_int ];
  (* max_int is the largest encodable value: exactly 9 bytes, final byte 0x3f *)
  check tint "max_int is 9 bytes" 9 (String.length (encode Codec.W.varint max_int));
  match encode Codec.W.varint (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative varint accepted"

let test_varint_rejects_overflow () =
  (* 9 bytes whose final byte has bit 6 set: value needs a 64th bit *)
  expect_malformed "64-bit varint" Codec.R.varint "\xff\xff\xff\xff\xff\xff\xff\xff\x40";
  (* 10-byte sequence: longer than any 63-bit value *)
  expect_malformed "10-byte varint" Codec.R.varint
    "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01";
  (* a sequence that never terminates must not loop or wrap *)
  expect_malformed "non-terminating varint" Codec.R.varint (String.make 32 '\x80');
  (* still-truncated input is Truncated, not Malformed *)
  expect_truncated "truncated varint" Codec.R.varint "\x80\x80";
  expect_truncated "empty varint" Codec.R.varint ""

(* --- svarint ------------------------------------------------------ *)

let test_svarint_edges () =
  List.iter
    (fun v ->
      check tint (string_of_int v) v (decode Codec.R.svarint (encode Codec.W.svarint v)))
    [ 0; 1; -1; 63; 64; -64; -65; 8191; -8192; max_int; min_int; max_int - 1; min_int + 1 ]

let test_svarint_rejects_overflow () =
  (* 10-byte sequence shifts past bit 63 *)
  expect_malformed "10-byte svarint" Codec.R.svarint
    "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01";
  expect_malformed "non-terminating svarint" Codec.R.svarint (String.make 16 '\x80');
  (* a full 9-byte sequence is the longest legal form; its sign extension
     keeps it inside the 63-bit [int] range *)
  check tint "-2^56" (-72057594037927936)
    (decode Codec.R.svarint "\x80\x80\x80\x80\x80\x80\x80\x80\x7f");
  expect_truncated "truncated svarint" Codec.R.svarint "\x80"

(* --- float64 / str ------------------------------------------------ *)

let roundtrip_float v = decode Codec.R.float64 (encode Codec.W.float64 v)

let test_float_edges () =
  List.iter
    (fun v ->
      let v' = roundtrip_float v in
      if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v')) then
        Alcotest.failf "float %h round-tripped as %h" v v')
    [
      0.0;
      -0.0;
      1.5;
      -1.5;
      Float.nan;
      Float.infinity;
      Float.neg_infinity;
      Float.max_float;
      Float.min_float;
      epsilon_float;
      4.9e-324 (* smallest subnormal *);
    ]

let test_str_roundtrip () =
  List.iter
    (fun s -> check tstr "str" s (decode Codec.R.str (encode Codec.W.str s)))
    [ ""; "x"; String.make 300 'a'; "\x00\xff\x80binary" ]

(* --- properties --------------------------------------------------- *)

let prop_varint =
  QCheck.Test.make ~name:"varint round trip" ~count:1000
    QCheck.(map abs int)
    (fun v ->
      let v = abs v in
      decode Codec.R.varint (encode Codec.W.varint v) = v)

let prop_svarint =
  QCheck.Test.make ~name:"svarint round trip" ~count:1000 QCheck.int (fun v ->
      decode Codec.R.svarint (encode Codec.W.svarint v) = v)

let prop_float64 =
  QCheck.Test.make ~name:"float64 round trip (bit-exact)" ~count:1000 QCheck.float (fun v ->
      Int64.equal (Int64.bits_of_float (roundtrip_float v)) (Int64.bits_of_float v))

let prop_crc32_chunked =
  (* the streaming digest ([update] over arbitrary chunk boundaries, as
     the wire framing and the log writer use it) must equal the one-shot
     digest of the whole string *)
  QCheck.Test.make ~name:"crc32 chunked update equals one-shot" ~count:500
    QCheck.(
      pair
        (string_of_size Gen.(int_bound 300))
        (list_of_size Gen.(int_bound 8) (int_bound 100)))
    (fun (s, cuts) ->
      let len = String.length s in
      let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < len) cuts) in
      let crc = ref 0 in
      let pos = ref 0 in
      List.iter
        (fun c ->
          crc := Tml_store.Crc32.update !crc s !pos (c - !pos);
          pos := c)
        (cuts @ [ len ]);
      !crc = Tml_store.Crc32.string s)

let prop_varint_never_wraps =
  (* arbitrary byte strings: the reader answers, or raises Truncated or
     Malformed — but never returns a negative value (silent wrap) *)
  QCheck.Test.make ~name:"varint never wraps negative" ~count:1000
    QCheck.(string_of_size Gen.(int_bound 16))
    (fun s ->
      match decode Codec.R.varint s with
      | v -> v >= 0
      | exception (Codec.R.Truncated | Codec.R.Malformed _) -> true)

let () =
  Alcotest.run "tml_codec"
    [
      ( "hardening",
        [
          Alcotest.test_case "varint edge values" `Quick test_varint_edges;
          Alcotest.test_case "varint rejects overflow" `Quick test_varint_rejects_overflow;
          Alcotest.test_case "svarint edge values" `Quick test_svarint_edges;
          Alcotest.test_case "svarint rejects overflow" `Quick test_svarint_rejects_overflow;
          Alcotest.test_case "float64 edge values" `Quick test_float_edges;
          Alcotest.test_case "str round trip" `Quick test_str_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_varint;
            prop_svarint;
            prop_float64;
            prop_crc32_chunked;
            prop_varint_never_wraps;
          ] );
    ]
