(* The observability layer (lib/obs): span nesting and sink encoding
   (with a golden Chrome trace), the metrics registry, and optimization
   provenance — recording, the replay property, the binary codec and the
   speccache round trip. *)

open Tml_core
open Tml_vm
module Trace = Tml_obs.Trace
module Metrics = Tml_obs.Metrics
module Provenance = Tml_obs.Provenance
module Events = Tml_obs.Events

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* run [f] with tracing on: a deterministic clock (1 ms per reading), a
   fresh memory sink, everything restored afterwards *)
let with_tracing f =
  let saved_clock = !Trace.clock in
  let t = ref 0.0 in
  Trace.clock :=
    (fun () ->
      let v = !t in
      t := v +. 0.001;
      v);
  let sink, drain = Trace.memory_sink () in
  let id = Trace.add_sink sink in
  Trace.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Trace.enabled := false;
      Trace.remove_sink id;
      Trace.clock := saved_clock)
    (fun () -> f drain)

(* ------------------------------------------------------------------ *)
(* tracing: spans, instants, sinks                                      *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let events =
    with_tracing (fun drain ->
        Trace.with_span ~cat:"t" "outer" (fun () ->
            Trace.with_span ~cat:"t" "inner" (fun () -> ());
            Trace.instant ~cat:"t" "mark" ~args:[ "n", Trace.Int 3 ]);
        drain ())
  in
  let shape =
    List.map (fun e -> (e.Trace.ev_name, e.Trace.ev_ph)) events
  in
  check tbool "B/E nesting order" true
    (shape
    = [
        "outer", Trace.B;
        "inner", Trace.B;
        "inner", Trace.E;
        "mark", Trace.I;
        "outer", Trace.E;
      ]);
  (* the fake clock advances 1000 us per reading *)
  check tbool "timestamps from the installed clock" true
    (List.map (fun e -> e.Trace.ev_ts) events = [ 0.0; 1000.0; 2000.0; 3000.0; 4000.0 ])

let test_span_exception () =
  let events =
    with_tracing (fun drain ->
        (try Trace.with_span ~cat:"t" "boom" (fun () -> failwith "x") with
        | Failure _ -> ());
        drain ())
  in
  check tbool "E emitted on exception" true
    (List.map (fun e -> e.Trace.ev_ph) events = [ Trace.B; Trace.E ])

let test_disabled_is_silent () =
  let sink, drain = Trace.memory_sink () in
  let id = Trace.add_sink sink in
  Trace.enabled := false;
  Trace.instant ~cat:"t" "dropped";
  Trace.with_span ~cat:"t" "dropped" (fun () -> ());
  Trace.remove_sink id;
  check tint "no events while disabled" 0 (List.length (drain ()))

let test_memory_sink_bound () =
  let sink, drain = Trace.memory_sink ~limit:4 () in
  for i = 0 to 9 do
    sink.Trace.sk_emit
      { Trace.ev_name = string_of_int i; ev_cat = "t"; ev_ph = Trace.I; ev_ts = 0.0; ev_args = [] }
  done;
  check tbool "ring keeps the newest" true
    (List.map (fun e -> e.Trace.ev_name) (drain ()) = [ "6"; "7"; "8"; "9" ])

(* fixed event list shared by the renderer tests and the golden file *)
let golden_events =
  [
    { Trace.ev_name = "optimize"; ev_cat = "optimizer"; ev_ph = Trace.B; ev_ts = 0.0; ev_args = [] };
    {
      Trace.ev_name = "rule_fire";
      ev_cat = "optimizer";
      ev_ph = Trace.I;
      ev_ts = 125.5;
      ev_args =
        [
          "rule", Trace.Str "q.merge-select";
          "site", Trace.Str "(select \"r\")";
          "size_delta", Trace.Int (-4);
          "hot", Trace.Bool true;
          "ratio", Trace.Float 0.5;
        ];
    };
    { Trace.ev_name = "optimize"; ev_cat = "optimizer"; ev_ph = Trace.E; ev_ts = 250.0; ev_args = [] };
    {
      Trace.ev_name = "vm.run_steps";
      ev_cat = "vm";
      ev_ph = Trace.C;
      ev_ts = 1000.0;
      ev_args = [ "steps", Trace.Int 42 ];
    };
  ]

let test_chrome_golden () =
  let rendered = Trace.chrome_of_events golden_events in
  let golden = In_channel.with_open_bin "golden/trace.json" In_channel.input_all in
  check tstr "golden Chrome trace" golden rendered

let test_chrome_shape () =
  let doc = Trace.chrome_of_events golden_events in
  check tbool "traceEvents wrapper" true (contains doc "{\"traceEvents\":[");
  check tbool "display unit tail" true (contains doc "\"displayTimeUnit\":\"ms\"}");
  check tbool "escaped string arg" true (contains doc "(select \\\"r\\\")");
  (* one object per event, comma-separated *)
  let jsonl = Trace.jsonl_of_events golden_events in
  check tint "jsonl line count" (List.length golden_events)
    (List.length (String.split_on_char '\n' (String.trim jsonl)));
  check tstr "jsonl line = event_to_json" (Trace.event_to_json (List.hd golden_events))
    (List.hd (String.split_on_char '\n' jsonl))

let test_chrome_sink_streams () =
  let path = Filename.temp_file "tmlobs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Trace.chrome_sink oc in
      List.iter sink.Trace.sk_emit golden_events;
      sink.Trace.sk_close ();
      close_out oc;
      let streamed = In_channel.with_open_bin path In_channel.input_all in
      check tstr "streaming sink = pure renderer" (Trace.chrome_of_events golden_events)
        streamed)

(* ------------------------------------------------------------------ *)
(* metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  Metrics.reset_all ();
  let c = Metrics.counter "t.count" in
  Metrics.inc c;
  Metrics.add c 4;
  check tint "counter" 5 (Metrics.counter_value c);
  check tint "creation is idempotent" 5 (Metrics.counter_value (Metrics.counter "t.count"));
  let g = Metrics.gauge "t.gauge" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram ~labels:[ "k", "v" ] "t.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  check tint "histogram count" 2 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "histogram sum" 4.0 (Metrics.histogram_sum h);
  let src_resets = ref 0 in
  Metrics.register_source ~name:"t.src"
    ~snapshot:(fun () -> [ "x", Metrics.I 7; "y", Metrics.F 0.25 ])
    ~reset:(fun () -> incr src_resets);
  let json = Metrics.snapshot_json () in
  check tbool "counter in snapshot" true (contains json "\"t.count\":5");
  check tbool "labels render" true (contains json "t.hist{k=v}");
  check tbool "source fields in snapshot" true (contains json "\"x\":7");
  let report = Format.asprintf "%a" Metrics.pp_report () in
  check tbool "report merges sources" true
    (contains report "t.count" && contains report "-- t.src --");
  Metrics.reset_all ();
  check tint "owned metrics zeroed" 0 (Metrics.counter_value c);
  check tint "source reset once" 1 !src_resets;
  check tint "histogram zeroed" 0 (Metrics.histogram_count h);
  Metrics.unregister_source "t.src";
  check tbool "unregistered source gone" false (contains (Metrics.snapshot_json ()) "t.src")

let test_vm_run_metric () =
  Metrics.reset_all ();
  (* the vm.run_steps histogram is always on, tracing or not *)
  Events.vm_run ~engine:"test" ~steps:10;
  Events.vm_run ~engine:"test" ~steps:30;
  let h = Metrics.histogram "vm.run_steps" in
  check tint "vm_run observes" 2 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "vm_run sums steps" 40.0 (Metrics.histogram_sum h);
  Metrics.reset_all ()

(* ------------------------------------------------------------------ *)
(* provenance: recording, replay, codecs                                *)
(* ------------------------------------------------------------------ *)

let entry rule site fact sd cd =
  {
    Provenance.pv_rule = rule;
    pv_site = site;
    pv_fact = fact;
    pv_size_delta = sd;
    pv_cost_delta = cd;
  }

let test_provenance_basics () =
  let log = [ entry "beta" "(proc/2 ...)" "" (-4) (-3); entry "expand" "2 call sites" "" 10 2 ] in
  check tbool "equal on itself" true (Provenance.equal log log);
  check tbool "unequal on different rule" false
    (Provenance.equal log [ entry "eta" "(proc/2 ...)" "" (-4) (-3); List.nth log 1 ]);
  check tstr "summary totals" "2 steps, size +6, cost -1" (Provenance.summary log);
  let rendered = Format.asprintf "%a" Provenance.pp log in
  check tbool "pp numbers the steps" true
    (contains rendered "1. beta" && contains rendered "2. expand");
  check tbool "empty log prints placeholder" true
    (contains (Format.asprintf "%a" Provenance.pp []) "no rewrite steps")

(* recording is deterministic and the recorded log replays: re-optimizing
   the pre-term reproduces the same derivation and an alpha-equivalent
   result.  This is the property that makes :explain trustworthy. *)
let test_replay_property () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Fun.protect
    ~finally:(fun () -> Provenance.enabled := saved)
    (fun () ->
      for seed = 0 to 99 do
        let rng = Random.State.make [| seed |] in
        let pre = Gen.proc2 rng ~size:(10 + (seed mod 40)) in
        let post, report = Optimizer.optimize_value pre in
        match Optimizer.replay pre report.Optimizer.prov with
        | Ok post' ->
          if not (Term.alpha_equal_value post post') then
            Alcotest.failf "seed %d: replayed term is not alpha-equal" seed
        | Error msg -> Alcotest.failf "seed %d: %s" seed msg
      done)

let test_replay_detects_forged_log () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Fun.protect
    ~finally:(fun () -> Provenance.enabled := saved)
    (fun () ->
      let rng = Random.State.make [| 11 |] in
      let pre = Gen.proc2 rng ~size:30 in
      let _, report = Optimizer.optimize_value pre in
      let forged = entry "made-up" "nowhere" "" (-100) (-100) :: report.Optimizer.prov in
      match Optimizer.replay pre forged with
      | Ok _ -> Alcotest.fail "forged derivation accepted"
      | Error _ -> ())

let test_budget_exhausted_event () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Profile.reset ();
  Profile.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Profile.enabled := false;
      Profile.reset ();
      Provenance.enabled := saved)
    (fun () ->
      let config = { Optimizer.o3 with Optimizer.penalty_limit = 1 } in
      let rng = Random.State.make [| 7 |] in
      (* keep optimizing random terms until one accrues expansion penalty *)
      let rec find_truncated attempt =
        if attempt > 200 then Alcotest.fail "no term exhausted the budget"
        else begin
          let pre = Gen.proc2 rng ~size:60 in
          let _, report = Optimizer.optimize_value ~config pre in
          let hit =
            List.exists
              (fun e -> e.Provenance.pv_rule = "budget-exhausted")
              report.Optimizer.prov
          in
          if not hit then find_truncated (attempt + 1)
        end
      in
      find_truncated 0;
      check tbool "profile counted the truncation" true
        (Profile.global.Profile.budget_exhausted >= 1);
      check tbool "--profile output surfaces it" true
        (contains (Format.asprintf "%a" Profile.pp Profile.global) "budget exhausted"))

let test_prov_codec_roundtrip () =
  let logs =
    [
      [];
      [ entry "beta" "(proc/1 ...)" "" (-4) (-3) ];
      [
        entry "q.index-select" "(select ...)" "index on field 2 of <oid 0x00000a>" (-12) (-40);
        entry "expand" "3 call sites" "" 120 (-9);
        entry "weird \"names\"\n" "site\twith\ttabs" "π∈ℝ" max_int min_int;
      ];
    ]
  in
  List.iter
    (fun log ->
      let decoded = Tml_store.Prov_codec.decode (Tml_store.Prov_codec.encode log) in
      check tbool "codec round trip" true (Provenance.equal log decoded))
    logs;
  (match Tml_store.Prov_codec.decode "XXXX" with
  | exception Tml_store.Prov_codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let truncated =
    let s = Tml_store.Prov_codec.encode (List.nth logs 2) in
    String.sub s 0 (String.length s - 3)
  in
  match Tml_store.Prov_codec.decode truncated with
  | exception Tml_store.Prov_codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated log accepted"

let test_speccache_prov_roundtrip () =
  Speccache.clear ();
  let heap = Value.Heap.create () in
  let tml = Sexp.parse_value "proc(x ce! cc!) (cc! x)" in
  let oid = Value.Heap.alloc_func heap ~name:"f" tml in
  let prov = [ entry "beta" "(proc/1 ...)" "" (-4) (-3); entry "eta" "(cc ...)" "" (-2) (-1) ] in
  let outcome =
    {
      Speccache.sc_ptml = Tml_store.Ptml.encode_value tml;
      sc_attrs = [];
      sc_inlined = 0;
      sc_rounds = 1;
      sc_penalty = 0;
      sc_expansions = 0;
      sc_size_before = 5;
      sc_size_after = 3;
      sc_cost_before = 4;
      sc_cost_after = 2;
      sc_prov = prov;
    }
  in
  Speccache.store heap ~callee:oid ~fp:"fp" ~deps:[] outcome;
  let image = Speccache.encode () in
  Speccache.clear ();
  Speccache.decode image;
  (match Speccache.find heap ~callee:oid ~fp:"fp" with
  | Some o -> check tbool "derivation survives the cache image" true
      (Provenance.equal prov o.Speccache.sc_prov)
  | None -> Alcotest.fail "entry lost across encode/decode");
  Speccache.clear ()

(* a reflective specialization records provenance, persists it as a heap
   Bytes object behind the "provenance" attribute, and a warm cache hit
   re-serves the same derivation *)
let test_reflect_provenance () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Speccache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Speccache.clear ();
      Provenance.enabled := saved)
    (fun () ->
      let program =
        Tml_frontend.Link.load
          "let sq(x: Int): Int = x * x do io.print_int(sq(3)) end"
      in
      let ctx = program.Tml_frontend.Link.ctx in
      let oid = Tml_frontend.Link.function_oid program "sq" in
      let r1 = Tml_reflect.Reflect.optimize ctx oid in
      let cold = r1.Tml_reflect.Reflect.report.Optimizer.prov in
      check tbool "cold run records a derivation" true (cold <> []);
      (match Tml_reflect.Reflect.provenance ctx r1.Tml_reflect.Reflect.oid with
      | Some stored -> check tbool "stored attribute decodes to the log" true
          (Provenance.equal cold stored)
      | None -> Alcotest.fail "no provenance attribute on the optimized function");
      let r2 = Tml_reflect.Reflect.optimize ctx oid in
      check tbool "warm hit re-serves the derivation" true
        (Provenance.equal cold r2.Tml_reflect.Reflect.report.Optimizer.prov))

let () =
  Runtime.install ();
  Tml_query.Qprims.install ();
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception" `Quick test_span_exception;
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
          Alcotest.test_case "memory sink bound" `Quick test_memory_sink_bound;
          Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
          Alcotest.test_case "chrome/jsonl shape" `Quick test_chrome_shape;
          Alcotest.test_case "chrome sink streams" `Quick test_chrome_sink_streams;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "vm.run_steps" `Quick test_vm_run_metric;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "basics" `Quick test_provenance_basics;
          Alcotest.test_case "replay property" `Quick test_replay_property;
          Alcotest.test_case "replay rejects forged log" `Quick test_replay_detects_forged_log;
          Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted_event;
          Alcotest.test_case "codec round trip" `Quick test_prov_codec_roundtrip;
          Alcotest.test_case "speccache round trip" `Quick test_speccache_prov_roundtrip;
          Alcotest.test_case "reflect + warm hit" `Quick test_reflect_provenance;
        ] );
    ]
