(* The observability layer (lib/obs): span nesting and sink encoding
   (with a golden Chrome trace), the metrics registry, and optimization
   provenance — recording, the replay property, the binary codec and the
   speccache round trip. *)

open Tml_core
open Tml_vm
module Trace = Tml_obs.Trace
module Metrics = Tml_obs.Metrics
module Provenance = Tml_obs.Provenance
module Events = Tml_obs.Events

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* run [f] with tracing on: a deterministic clock (1 ms per reading), a
   fresh memory sink, everything restored afterwards *)
let with_tracing f =
  let saved_clock = !Trace.clock in
  let t = ref 0.0 in
  Trace.clock :=
    (fun () ->
      let v = !t in
      t := v +. 0.001;
      v);
  let sink, drain = Trace.memory_sink () in
  let id = Trace.add_sink sink in
  Trace.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Trace.enabled := false;
      Trace.remove_sink id;
      Trace.clock := saved_clock)
    (fun () -> f drain)

(* ------------------------------------------------------------------ *)
(* tracing: spans, instants, sinks                                      *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let events =
    with_tracing (fun drain ->
        Trace.with_span ~cat:"t" "outer" (fun () ->
            Trace.with_span ~cat:"t" "inner" (fun () -> ());
            Trace.instant ~cat:"t" "mark" ~args:[ "n", Trace.Int 3 ]);
        drain ())
  in
  let shape =
    List.map (fun e -> (e.Trace.ev_name, e.Trace.ev_ph)) events
  in
  check tbool "B/E nesting order" true
    (shape
    = [
        "outer", Trace.B;
        "inner", Trace.B;
        "inner", Trace.E;
        "mark", Trace.I;
        "outer", Trace.E;
      ]);
  (* the fake clock advances 1000 us per reading *)
  check tbool "timestamps from the installed clock" true
    (List.map (fun e -> e.Trace.ev_ts) events = [ 0.0; 1000.0; 2000.0; 3000.0; 4000.0 ])

let test_span_exception () =
  let events =
    with_tracing (fun drain ->
        (try Trace.with_span ~cat:"t" "boom" (fun () -> failwith "x") with
        | Failure _ -> ());
        drain ())
  in
  check tbool "E emitted on exception" true
    (List.map (fun e -> e.Trace.ev_ph) events = [ Trace.B; Trace.E ])

let test_disabled_is_silent () =
  let sink, drain = Trace.memory_sink () in
  let id = Trace.add_sink sink in
  Trace.enabled := false;
  Trace.instant ~cat:"t" "dropped";
  Trace.with_span ~cat:"t" "dropped" (fun () -> ());
  Trace.remove_sink id;
  check tint "no events while disabled" 0 (List.length (drain ()))

let test_memory_sink_bound () =
  let sink, drain = Trace.memory_sink ~limit:4 () in
  for i = 0 to 9 do
    sink.Trace.sk_emit
      { Trace.ev_name = string_of_int i; ev_cat = "t"; ev_ph = Trace.I; ev_ts = 0.0;
        ev_args = []; ev_tid = 1 }
  done;
  check tbool "ring keeps the newest" true
    (List.map (fun e -> e.Trace.ev_name) (drain ()) = [ "6"; "7"; "8"; "9" ])

(* fixed event list shared by the renderer tests and the golden file *)
let golden_events =
  [
    { Trace.ev_name = "optimize"; ev_cat = "optimizer"; ev_ph = Trace.B; ev_ts = 0.0;
      ev_args = []; ev_tid = 1 };
    {
      Trace.ev_name = "rule_fire";
      ev_cat = "optimizer";
      ev_ph = Trace.I;
      ev_ts = 125.5;
      ev_args =
        [
          "rule", Trace.Str "q.merge-select";
          "site", Trace.Str "(select \"r\")";
          "size_delta", Trace.Int (-4);
          "hot", Trace.Bool true;
          "ratio", Trace.Float 0.5;
        ];
      ev_tid = 1;
    };
    { Trace.ev_name = "optimize"; ev_cat = "optimizer"; ev_ph = Trace.E; ev_ts = 250.0;
      ev_args = []; ev_tid = 1 };
    {
      Trace.ev_name = "vm.run_steps";
      ev_cat = "vm";
      ev_ph = Trace.C;
      ev_ts = 1000.0;
      ev_args = [ "steps", Trace.Int 42 ];
      ev_tid = 1;
    };
  ]

let test_chrome_golden () =
  let rendered = Trace.chrome_of_events golden_events in
  let golden = In_channel.with_open_bin "golden/trace.json" In_channel.input_all in
  check tstr "golden Chrome trace" golden rendered

let test_chrome_shape () =
  let doc = Trace.chrome_of_events golden_events in
  check tbool "traceEvents wrapper" true (contains doc "{\"traceEvents\":[");
  check tbool "display unit tail" true (contains doc "\"displayTimeUnit\":\"ms\"}");
  check tbool "escaped string arg" true (contains doc "(select \\\"r\\\")");
  (* one object per event, comma-separated *)
  let jsonl = Trace.jsonl_of_events golden_events in
  check tint "jsonl line count" (List.length golden_events)
    (List.length (String.split_on_char '\n' (String.trim jsonl)));
  check tstr "jsonl line = event_to_json" (Trace.event_to_json (List.hd golden_events))
    (List.hd (String.split_on_char '\n' jsonl))

let test_chrome_sink_streams () =
  let path = Filename.temp_file "tmlobs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Trace.chrome_sink oc in
      List.iter sink.Trace.sk_emit golden_events;
      sink.Trace.sk_close ();
      close_out oc;
      let streamed = In_channel.with_open_bin path In_channel.input_all in
      check tstr "streaming sink = pure renderer" (Trace.chrome_of_events golden_events)
        streamed)

let test_memory_sink_counts_drops () =
  Metrics.reset_all ();
  let dropped = Metrics.counter "trace.dropped_spans" in
  let before = Metrics.counter_value dropped in
  let sink, _drain = Trace.memory_sink ~limit:4 () in
  for i = 0 to 9 do
    sink.Trace.sk_emit
      { Trace.ev_name = string_of_int i; ev_cat = "t"; ev_ph = Trace.I; ev_ts = 0.0;
        ev_args = []; ev_tid = 1 }
  done;
  (* eviction is not silent: the ring owns up to every lost span *)
  check tint "evictions counted" 6 (Metrics.counter_value dropped - before);
  check tbool "surfaced in the stats snapshot" true
    (contains (Metrics.snapshot_json ()) "\"trace.dropped_spans\":6")

let test_tid_stamping () =
  let saved = !Trace.tid_source in
  Trace.tid_source := (fun () -> 7);
  Fun.protect
    ~finally:(fun () -> Trace.tid_source := saved)
    (fun () ->
      let events =
        with_tracing (fun drain ->
            Trace.with_span ~cat:"t" "threaded" (fun () -> ());
            drain ())
      in
      check tbool "events stamped with the installed tid" true
        (List.for_all (fun e -> e.Trace.ev_tid = 7) events);
      check tbool "tid reaches the Chrome JSON" true
        (contains (Trace.chrome_of_events events) "\"tid\":7"))

(* ------------------------------------------------------------------ *)
(* metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  Metrics.reset_all ();
  let c = Metrics.counter "t.count" in
  Metrics.inc c;
  Metrics.add c 4;
  check tint "counter" 5 (Metrics.counter_value c);
  check tint "creation is idempotent" 5 (Metrics.counter_value (Metrics.counter "t.count"));
  let g = Metrics.gauge "t.gauge" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram ~labels:[ "k", "v" ] "t.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  check tint "histogram count" 2 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "histogram sum" 4.0 (Metrics.histogram_sum h);
  let src_resets = ref 0 in
  Metrics.register_source ~name:"t.src"
    ~snapshot:(fun () -> [ "x", Metrics.I 7; "y", Metrics.F 0.25 ])
    ~reset:(fun () -> incr src_resets);
  let json = Metrics.snapshot_json () in
  check tbool "counter in snapshot" true (contains json "\"t.count\":5");
  check tbool "labels render" true (contains json "t.hist{k=v}");
  check tbool "source fields in snapshot" true (contains json "\"x\":7");
  let report = Format.asprintf "%a" Metrics.pp_report () in
  check tbool "report merges sources" true
    (contains report "t.count" && contains report "-- t.src --");
  Metrics.reset_all ();
  check tint "owned metrics zeroed" 0 (Metrics.counter_value c);
  check tint "source reset once" 1 !src_resets;
  check tint "histogram zeroed" 0 (Metrics.histogram_count h);
  Metrics.unregister_source "t.src";
  check tbool "unregistered source gone" false (contains (Metrics.snapshot_json ()) "t.src")

let test_vm_run_metric () =
  Metrics.reset_all ();
  (* the vm.run_steps histogram is always on, tracing or not *)
  Events.vm_run ~engine:"test" ~steps:10;
  Events.vm_run ~engine:"test" ~steps:30;
  let h = Metrics.histogram "vm.run_steps" in
  check tint "vm_run observes" 2 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "vm_run sums steps" 40.0 (Metrics.histogram_sum h);
  Metrics.reset_all ()

(* the reservoir percentile estimator must stay coherent under
   concurrent writers: no torn snapshot (count from one moment, sum from
   another), no crash, percentiles inside the observed range *)
let test_reservoir_concurrent () =
  Metrics.reset_all ();
  let h = Metrics.histogram "t.concurrent" in
  let writers = 4 and per_writer = 5000 in
  let stop_readers = ref false in
  let reader_failures = ref 0 in
  let readers =
    Array.init 2 (fun _ ->
        Thread.create
          (fun () ->
            while not !stop_readers do
              let p50 = Metrics.percentile h 0.5 in
              let p99 = Metrics.percentile h 0.99 in
              if p50 < 0.0 || p50 > 1.0 || p99 < 0.0 || p99 > 1.0 then incr reader_failures;
              Thread.yield ()
            done)
          ())
  in
  let threads =
    Array.init writers (fun _ ->
        Thread.create
          (fun () ->
            for i = 0 to per_writer - 1 do
              Metrics.observe h (float_of_int (i mod 1000) /. 999.0)
            done)
          ())
  in
  Array.iter Thread.join threads;
  stop_readers := true;
  Array.iter Thread.join readers;
  check tint "no observation lost" (writers * per_writer) (Metrics.histogram_count h);
  let expected_sum =
    float_of_int writers *. (float_of_int per_writer /. 1000.0)
    *. (Array.init 1000 (fun i -> float_of_int i /. 999.0) |> Array.fold_left ( +. ) 0.0)
  in
  check (Alcotest.float 1e-6) "no partial sum" expected_sum (Metrics.histogram_sum h);
  check tint "no torn percentile read" 0 !reader_failures;
  let p50 = Metrics.percentile h 0.5 in
  check tbool "p50 within the observed range" true (p50 >= 0.0 && p50 <= 1.0);
  Metrics.reset_all ()

let test_prometheus_exposition () =
  Metrics.reset_all ();
  Metrics.inc (Metrics.counter "server.evals");
  Metrics.set_gauge (Metrics.gauge "server.active_sessions") 3.0;
  let h = Metrics.histogram ~labels:[ "kind", "eval" ] "eval_lock.wait_s" in
  Metrics.observe h 0.25;
  Metrics.observe h 0.75;
  Metrics.register_source ~name:"query"
    ~snapshot:(fun () -> [ "index_probes", Metrics.I 12 ])
    ~reset:(fun () -> ());
  let doc = Metrics.prometheus () in
  Metrics.unregister_source "query";
  (* dotted names are sanitized to the Prometheus alphabet *)
  check tbool "counter type line" true (contains doc "# TYPE server_evals counter");
  check tbool "counter sample" true (contains doc "server_evals 1");
  check tbool "gauge sample" true (contains doc "server_active_sessions 3");
  check tbool "summary type line" true (contains doc "# TYPE eval_lock_wait_s summary");
  check tbool "labels merge with quantile" true
    (contains doc "eval_lock_wait_s{quantile=\"0.5\",kind=\"eval\"}");
  check tbool "summary count" true (contains doc "eval_lock_wait_s_count{kind=\"eval\"} 2");
  check tbool "summary sum" true (contains doc "eval_lock_wait_s_sum{kind=\"eval\"} 1");
  check tbool "source flattened to a gauge" true (contains doc "query_index_probes 12");
  Metrics.reset_all ()

(* ------------------------------------------------------------------ *)
(* slow-query log                                                       *)
(* ------------------------------------------------------------------ *)

module Slowlog = Tml_obs.Slowlog

let slow_entry ?(trace = 0xbeef) ?(src = "count(r)") ?(rules = []) ?(facts = []) () =
  {
    Slowlog.sl_trace = trace;
    sl_kind = "eval";
    sl_source = src;
    sl_duration_s = 0.125;
    sl_steps = 4242;
    sl_tier = "tiered";
    sl_page_faults = 3;
    sl_index_probes = 17;
    sl_rules = rules;
    sl_facts = facts;
  }

let test_slowlog_ring () =
  let log = Slowlog.create ~limit:3 () in
  check tint "empty" 0 (Slowlog.length log);
  for i = 1 to 5 do
    Slowlog.add log (slow_entry ~trace:i ())
  done;
  check tint "bounded" 3 (Slowlog.length log);
  check tint "drop count" 2 (Slowlog.dropped log);
  check tbool "oldest evicted, order kept" true
    (List.map (fun e -> e.Slowlog.sl_trace) (Slowlog.entries log) = [ 3; 4; 5 ]);
  Slowlog.clear log;
  check tint "cleared" 0 (Slowlog.length log)

let test_slowlog_codec () =
  let log = Slowlog.create ~limit:8 () in
  Slowlog.add log
    (slow_entry
       ~src:"select(fun (t) => field(t, 1) > \"weird\n\t\" end, r)"
       ~rules:[ "q.index-select"; "beta" ]
       ~facts:[ "index on field 2 of <oid 0x00000a>"; "" ]
       ());
  Slowlog.add log (slow_entry ~trace:0 ~src:"" ());
  let decoded = Slowlog.decode ~limit:8 (Slowlog.encode log) in
  check tbool "entries survive the codec" true (Slowlog.entries decoded = Slowlog.entries log);
  check tint "limit is the caller's" 8 (Slowlog.limit decoded);
  (match Slowlog.decode "not a slow log" with
  | exception Slowlog.Corrupt _ -> ()
  | (_ : Slowlog.t) -> Alcotest.fail "bad magic accepted");
  let truncated =
    let s = Slowlog.encode log in
    String.sub s 0 (String.length s - 2)
  in
  match Slowlog.decode truncated with
  | exception Slowlog.Corrupt _ -> ()
  | (_ : Slowlog.t) -> Alcotest.fail "truncated payload accepted"

let test_slowlog_persistence () =
  let path = Filename.temp_file "tmlslow" ".slowlog" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let log = Slowlog.create ~limit:4 () in
      Slowlog.add log (slow_entry ~rules:[ "q.merge-select" ] ());
      Slowlog.save log path;
      let reloaded = Slowlog.load path in
      check tbool "entries reload" true (Slowlog.entries reloaded = Slowlog.entries log);
      (* a corrupt sidecar must never cost the server: load yields empty *)
      Out_channel.with_open_bin path (fun oc -> output_string oc "garbage");
      check tint "corrupt file loads as empty" 0 (Slowlog.length (Slowlog.load path));
      check tint "missing file loads as empty" 0
        (Slowlog.length (Slowlog.load (path ^ ".nope"))))

let test_slowlog_rendering () =
  let log = Slowlog.create ~limit:4 () in
  Slowlog.add log (slow_entry ~trace:1 ~src:"count(older)" ());
  Slowlog.add log
    (slow_entry ~trace:2 ~src:"count(newer)" ~rules:[ "q.index-select" ]
       ~facts:[ "index on field 2" ] ());
  let json = Slowlog.to_json log in
  check tbool "json shape" true
    (contains json "\"limit\":4" && contains json "\"dropped\":0"
    && contains json "\"entries\":[");
  check tbool "json carries the rule names" true (contains json "q.index-select");
  let text = Format.asprintf "%a" Slowlog.pp log in
  check tbool "pp names both queries" true
    (contains text "count(older)" && contains text "count(newer)");
  check tbool "pp lists fired rules" true (contains text "q.index-select");
  (* newest first in the human rendering *)
  let index_of needle =
    let n = String.length needle in
    let rec find i = if String.sub text i n = needle then i else find (i + 1) in
    find 0
  in
  check tbool "newest entry printed first" true
    (index_of "count(newer)" < index_of "count(older)")

(* ------------------------------------------------------------------ *)
(* vm profiler                                                          *)
(* ------------------------------------------------------------------ *)

let test_vmprof_attribution () =
  let saved = !Vmprof.enabled in
  Vmprof.reset ();
  Vmprof.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Vmprof.enabled := saved;
      Vmprof.reset ())
    (fun () ->
      let program =
        Tml_frontend.Link.load
          "let burn(x: Int): Int = x * x + x\n\
           do io.print_int(burn(3)) end\n\
           do io.print_int(burn(4)) end"
      in
      (match Tml_frontend.Link.run_main program ~engine:`Machine () with
      | (Eval.Done _ | Eval.Raised _), (_ : int) -> ()
      | _ -> Alcotest.fail "main did not finish");
      let samples = Vmprof.samples () in
      check tbool "steps attributed to the stored function" true
        (List.exists
           (fun s ->
             contains s.Vmprof.vp_key "burn" && s.Vmprof.vp_steps > 0 && s.Vmprof.vp_calls >= 2)
           samples);
      check tbool "total covers the samples" true
        (Vmprof.total_steps () >= List.fold_left (fun a s -> a + s.Vmprof.vp_steps) 0 samples);
      let collapsed = Vmprof.collapsed () in
      check tbool "collapsed stack line" true (contains collapsed ";burn#");
      let report = Format.asprintf "%a" Vmprof.pp () in
      check tbool "report names the function" true (contains report "burn"))

(* ------------------------------------------------------------------ *)
(* provenance: recording, replay, codecs                                *)
(* ------------------------------------------------------------------ *)

let entry rule site fact sd cd =
  {
    Provenance.pv_rule = rule;
    pv_site = site;
    pv_fact = fact;
    pv_size_delta = sd;
    pv_cost_delta = cd;
  }

let test_provenance_basics () =
  let log = [ entry "beta" "(proc/2 ...)" "" (-4) (-3); entry "expand" "2 call sites" "" 10 2 ] in
  check tbool "equal on itself" true (Provenance.equal log log);
  check tbool "unequal on different rule" false
    (Provenance.equal log [ entry "eta" "(proc/2 ...)" "" (-4) (-3); List.nth log 1 ]);
  check tstr "summary totals" "2 steps, size +6, cost -1" (Provenance.summary log);
  let rendered = Format.asprintf "%a" Provenance.pp log in
  check tbool "pp numbers the steps" true
    (contains rendered "1. beta" && contains rendered "2. expand");
  check tbool "empty log prints placeholder" true
    (contains (Format.asprintf "%a" Provenance.pp []) "no rewrite steps")

(* recording is deterministic and the recorded log replays: re-optimizing
   the pre-term reproduces the same derivation and an alpha-equivalent
   result.  This is the property that makes :explain trustworthy. *)
let test_replay_property () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Fun.protect
    ~finally:(fun () -> Provenance.enabled := saved)
    (fun () ->
      for seed = 0 to 99 do
        let rng = Random.State.make [| seed |] in
        let pre = Gen.proc2 rng ~size:(10 + (seed mod 40)) in
        let post, report = Optimizer.optimize_value pre in
        match Optimizer.replay pre report.Optimizer.prov with
        | Ok post' ->
          if not (Term.alpha_equal_value post post') then
            Alcotest.failf "seed %d: replayed term is not alpha-equal" seed
        | Error msg -> Alcotest.failf "seed %d: %s" seed msg
      done)

let test_replay_detects_forged_log () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Fun.protect
    ~finally:(fun () -> Provenance.enabled := saved)
    (fun () ->
      let rng = Random.State.make [| 11 |] in
      let pre = Gen.proc2 rng ~size:30 in
      let _, report = Optimizer.optimize_value pre in
      let forged = entry "made-up" "nowhere" "" (-100) (-100) :: report.Optimizer.prov in
      match Optimizer.replay pre forged with
      | Ok _ -> Alcotest.fail "forged derivation accepted"
      | Error _ -> ())

let test_budget_exhausted_event () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Profile.reset ();
  Profile.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Profile.enabled := false;
      Profile.reset ();
      Provenance.enabled := saved)
    (fun () ->
      let config = { Optimizer.o3 with Optimizer.penalty_limit = 1 } in
      let rng = Random.State.make [| 7 |] in
      (* keep optimizing random terms until one accrues expansion penalty *)
      let rec find_truncated attempt =
        if attempt > 200 then Alcotest.fail "no term exhausted the budget"
        else begin
          let pre = Gen.proc2 rng ~size:60 in
          let _, report = Optimizer.optimize_value ~config pre in
          let hit =
            List.exists
              (fun e -> e.Provenance.pv_rule = "budget-exhausted")
              report.Optimizer.prov
          in
          if not hit then find_truncated (attempt + 1)
        end
      in
      find_truncated 0;
      check tbool "profile counted the truncation" true
        (Profile.global.Profile.budget_exhausted >= 1);
      check tbool "--profile output surfaces it" true
        (contains (Format.asprintf "%a" Profile.pp Profile.global) "budget exhausted"))

let test_prov_codec_roundtrip () =
  let logs =
    [
      [];
      [ entry "beta" "(proc/1 ...)" "" (-4) (-3) ];
      [
        entry "q.index-select" "(select ...)" "index on field 2 of <oid 0x00000a>" (-12) (-40);
        entry "expand" "3 call sites" "" 120 (-9);
        entry "weird \"names\"\n" "site\twith\ttabs" "π∈ℝ" max_int min_int;
      ];
    ]
  in
  List.iter
    (fun log ->
      let decoded = Tml_store.Prov_codec.decode (Tml_store.Prov_codec.encode log) in
      check tbool "codec round trip" true (Provenance.equal log decoded))
    logs;
  (match Tml_store.Prov_codec.decode "XXXX" with
  | exception Tml_store.Prov_codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let truncated =
    let s = Tml_store.Prov_codec.encode (List.nth logs 2) in
    String.sub s 0 (String.length s - 3)
  in
  match Tml_store.Prov_codec.decode truncated with
  | exception Tml_store.Prov_codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated log accepted"

let test_speccache_prov_roundtrip () =
  Speccache.clear ();
  let heap = Value.Heap.create () in
  let tml = Sexp.parse_value "proc(x ce! cc!) (cc! x)" in
  let oid = Value.Heap.alloc_func heap ~name:"f" tml in
  let prov = [ entry "beta" "(proc/1 ...)" "" (-4) (-3); entry "eta" "(cc ...)" "" (-2) (-1) ] in
  let outcome =
    {
      Speccache.sc_ptml = Tml_store.Ptml.encode_value tml;
      sc_attrs = [];
      sc_inlined = 0;
      sc_rounds = 1;
      sc_penalty = 0;
      sc_expansions = 0;
      sc_size_before = 5;
      sc_size_after = 3;
      sc_cost_before = 4;
      sc_cost_after = 2;
      sc_prov = prov;
    }
  in
  Speccache.store heap ~callee:oid ~fp:"fp" ~deps:[] outcome;
  let image = Speccache.encode () in
  Speccache.clear ();
  Speccache.decode image;
  (match Speccache.find heap ~callee:oid ~fp:"fp" with
  | Some o -> check tbool "derivation survives the cache image" true
      (Provenance.equal prov o.Speccache.sc_prov)
  | None -> Alcotest.fail "entry lost across encode/decode");
  Speccache.clear ()

(* a reflective specialization records provenance, persists it as a heap
   Bytes object behind the "provenance" attribute, and a warm cache hit
   re-serves the same derivation *)
let test_reflect_provenance () =
  let saved = !Provenance.enabled in
  Provenance.enabled := true;
  Speccache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Speccache.clear ();
      Provenance.enabled := saved)
    (fun () ->
      let program =
        Tml_frontend.Link.load
          "let sq(x: Int): Int = x * x do io.print_int(sq(3)) end"
      in
      let ctx = program.Tml_frontend.Link.ctx in
      let oid = Tml_frontend.Link.function_oid program "sq" in
      let r1 = Tml_reflect.Reflect.optimize ctx oid in
      let cold = r1.Tml_reflect.Reflect.report.Optimizer.prov in
      check tbool "cold run records a derivation" true (cold <> []);
      (match Tml_reflect.Reflect.provenance ctx r1.Tml_reflect.Reflect.oid with
      | Some stored -> check tbool "stored attribute decodes to the log" true
          (Provenance.equal cold stored)
      | None -> Alcotest.fail "no provenance attribute on the optimized function");
      let r2 = Tml_reflect.Reflect.optimize ctx oid in
      check tbool "warm hit re-serves the derivation" true
        (Provenance.equal cold r2.Tml_reflect.Reflect.report.Optimizer.prov))

let () =
  Runtime.install ();
  Tml_query.Qprims.install ();
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception" `Quick test_span_exception;
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
          Alcotest.test_case "memory sink bound" `Quick test_memory_sink_bound;
          Alcotest.test_case "memory sink counts drops" `Quick test_memory_sink_counts_drops;
          Alcotest.test_case "tid stamping" `Quick test_tid_stamping;
          Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
          Alcotest.test_case "chrome/jsonl shape" `Quick test_chrome_shape;
          Alcotest.test_case "chrome sink streams" `Quick test_chrome_sink_streams;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "vm.run_steps" `Quick test_vm_run_metric;
          Alcotest.test_case "reservoir under concurrency" `Quick test_reservoir_concurrent;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
        ] );
      ( "slowlog",
        [
          Alcotest.test_case "bounded ring" `Quick test_slowlog_ring;
          Alcotest.test_case "codec round trip" `Quick test_slowlog_codec;
          Alcotest.test_case "persistence" `Quick test_slowlog_persistence;
          Alcotest.test_case "rendering" `Quick test_slowlog_rendering;
        ] );
      ( "vmprof",
        [ Alcotest.test_case "step attribution" `Quick test_vmprof_attribution ] );
      ( "provenance",
        [
          Alcotest.test_case "basics" `Quick test_provenance_basics;
          Alcotest.test_case "replay property" `Quick test_replay_property;
          Alcotest.test_case "replay rejects forged log" `Quick test_replay_detects_forged_log;
          Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted_event;
          Alcotest.test_case "codec round trip" `Quick test_prov_codec_roundtrip;
          Alcotest.test_case "speccache round trip" `Quick test_speccache_prov_roundtrip;
          Alcotest.test_case "reflect + warm hit" `Quick test_reflect_provenance;
        ] );
    ]
